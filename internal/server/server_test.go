package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/docstream"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/query"
	"repro/internal/serve"
)

// writeTestBundle compiles the standard {a,b,c} query set (well-formedness,
// one order query, one path query) and writes it as a bundle file, the way
// `nwtool compile` would.
func writeTestBundle(t testing.TB) string {
	t.Helper()
	alpha := alphabet.New("a", "b", "c")
	names, queries := query.StandardSet(alpha, []string{"a", "b"}, []string{"a", "c"})
	b := query.NewBundle(alpha)
	for i, q := range queries {
		if err := b.Add(names[i], q); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "queries.nwq")
	if err := os.WriteFile(path, b.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testServer boots a Server over a fresh test bundle plus an httptest
// front; both are torn down with the test.
func testServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.BundlePath == "" {
		cfg.BundlePath = writeTestBundle(t)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// testCorpus renders well-matched random documents as text, so the same
// bytes can travel over HTTP, into a pool reader, and through the serial
// engine.
func testCorpus(rng *rand.Rand, docs int) []string {
	corpus := make([]string, docs)
	for i := range corpus {
		n := generator.RandomDocument(rng, 20+rng.Intn(120), 8, []string{"a", "b", "c"})
		corpus[i] = docstream.Render(n)
	}
	return corpus
}

// serialVerdicts evaluates the corpus on a serial engine booted from the
// same bundle file — the ground truth all serving paths must match.
func serialVerdicts(t testing.TB, bundlePath string, corpus []string) ([]map[string]bool, []string) {
	t.Helper()
	b, err := query.OpenBundle(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	eng := engine.New()
	if _, err := eng.RegisterBundle(b); err != nil {
		t.Fatal(err)
	}
	names := eng.Names()
	out := make([]map[string]bool, len(corpus))
	for i, doc := range corpus {
		r, err := eng.RunReader(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = make(map[string]bool, len(names))
		for q, name := range names {
			out[i][name] = r.Verdicts[q]
		}
	}
	return out, names
}

func postDocument(t testing.TB, client *http.Client, base, id, doc string) (int, DocumentResult, string) {
	t.Helper()
	resp, err := client.Post(base+"/v1/documents?id="+id, "text/plain", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var res DocumentResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("status %d, unparseable body %q: %v", resp.StatusCode, body, err)
		}
	}
	return resp.StatusCode, res, string(body)
}

// TestHTTPDifferential is the serving acceptance test: on a 1200-document
// corpus, verdicts served over HTTP (both the single-document and the
// NDJSON batch endpoint) and verdicts from direct pool submission must be
// identical to serial engine evaluation of the same bytes.
func TestHTTPDifferential(t *testing.T) {
	bundle := writeTestBundle(t)
	rng := rand.New(rand.NewSource(41))
	const docs = 1200
	corpus := testCorpus(rng, docs)
	want, names := serialVerdicts(t, bundle, corpus)

	srv, ts := testServer(t, Config{BundlePath: bundle, Shards: 4, QueueDepth: 32})
	_ = srv

	// Path 1: HTTP single-document endpoint.
	client := ts.Client()
	for i, doc := range corpus {
		code, res, body := postDocument(t, client, ts.URL, fmt.Sprintf("doc-%d", i), doc)
		if code != http.StatusOK {
			t.Fatalf("doc %d: status %d, body %s", i, code, body)
		}
		for _, name := range names {
			if res.Verdicts[name] != want[i][name] {
				t.Errorf("doc %d query %q: HTTP %v, serial %v", i, name, res.Verdicts[name], want[i][name])
			}
		}
	}

	// Path 2: HTTP batch endpoint, all documents in one NDJSON stream.
	var req bytes.Buffer
	enc := json.NewEncoder(&req)
	for i, doc := range corpus {
		enc.Encode(map[string]string{"id": fmt.Sprintf("doc-%d", i), "doc": doc})
	}
	resp, err := client.Post(ts.URL+"/v1/batch", "application/x-ndjson", &req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lines := 0
	for sc.Scan() {
		var res struct {
			DocumentResult
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("batch line %d: %v", lines, err)
		}
		if res.Error != "" {
			t.Fatalf("batch line %d (%s): %s", lines, res.ID, res.Error)
		}
		if res.ID != fmt.Sprintf("doc-%d", lines) {
			t.Fatalf("batch line %d out of order: id %q", lines, res.ID)
		}
		for _, name := range names {
			if res.Verdicts[name] != want[lines][name] {
				t.Errorf("batch doc %d query %q: HTTP %v, serial %v", lines, name, res.Verdicts[name], want[lines][name])
			}
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != docs {
		t.Fatalf("batch returned %d lines, want %d", lines, docs)
	}

	// Path 3: direct pool submission from the same bundle file.
	b, err := query.OpenBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pool, err := serve.NewPoolFromBundle(b, serve.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	poolNames := pool.Engine().Names()
	futs := make([]*serve.Future, docs)
	for i, doc := range corpus {
		futs[i], err = pool.Submit(context.Background(), fmt.Sprintf("doc-%d", i), strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range futs {
		res, err := f.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for q, name := range poolNames {
			if res.Engine.Verdicts[q] != want[i][name] {
				t.Errorf("pool doc %d query %q: pool %v, serial %v", i, name, res.Engine.Verdicts[q], want[i][name])
			}
		}
	}
}

// TestReloadUnderLoad races document submissions against bundle reloads:
// client goroutines hammer /v1/documents while the main goroutine swaps
// pools via /v1/reload, and every single response must be a correct
// verdict set — nothing dropped, nothing torn, in-flight documents
// finishing on whichever generation accepted them.  Run under -race this
// also checks the swap publishes safely.
func TestReloadUnderLoad(t *testing.T) {
	bundle := writeTestBundle(t)
	rng := rand.New(rand.NewSource(43))
	corpus := testCorpus(rng, 60)
	want, names := serialVerdicts(t, bundle, corpus)

	srv, ts := testServer(t, Config{BundlePath: bundle, Shards: 3, QueueDepth: 16})
	client := ts.Client()

	const workers = 6
	const perWorker = 50
	var served, retried atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for n := 0; n < perWorker; n++ {
				i := rng.Intn(len(corpus))
				for {
					code, res, body := postDocument(t, client, ts.URL, fmt.Sprintf("w%d-n%d", w, n), corpus[i])
					if code == http.StatusTooManyRequests {
						retried.Add(1)
						continue // transient overload: retry until accepted
					}
					if code != http.StatusOK {
						t.Errorf("worker %d doc %d: status %d, body %s", w, n, code, body)
						return
					}
					for _, name := range names {
						if res.Verdicts[name] != want[i][name] {
							t.Errorf("worker %d corpus doc %d query %q: got %v, want %v",
								w, i, name, res.Verdicts[name], want[i][name])
						}
					}
					served.Add(1)
					break
				}
			}
		}(w)
	}

	// Swap generations while the workers hammer the old ones.
	reloads := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if served.Load() != workers*perWorker {
				t.Fatalf("served %d documents, want %d", served.Load(), workers*perWorker)
			}
			if reloads == 0 {
				t.Fatal("no reload ever ran during the load")
			}
			info, err := srv.BundleInfo()
			if err != nil {
				t.Fatal(err)
			}
			if info.Generation != int64(reloads)+1 {
				t.Fatalf("generation %d after %d reloads", info.Generation, reloads)
			}
			t.Logf("served %d documents across %d reloads (%d retries after 429)",
				served.Load(), reloads, retried.Load())
			return
		default:
			resp, err := client.Post(ts.URL+"/v1/reload", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reload status %d", resp.StatusCode)
			}
			reloads++
		}
	}
}

// TestHTTPErrorMapping pins the serve-sentinel-to-status-code contract:
// a full shard queue answers 429 with Retry-After, a closed server 503
// with Retry-After, an oversized body 413, and a malformed document 400 —
// each with a JSON error envelope.
func TestHTTPErrorMapping(t *testing.T) {
	srv, ts := testServer(t, Config{Shards: 1, QueueDepth: 1, MaxBodyBytes: 1 << 20})
	client := ts.Client()

	// Occupy the single worker and the depth-1 queue with two requests
	// whose bodies never finish arriving: the tokenizer blocks reading
	// them, so the next submission finds the queue full.
	type held struct {
		w    *io.PipeWriter
		done chan struct{}
	}
	var holds []held
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		done := make(chan struct{})
		req, err := http.NewRequest("POST", ts.URL+fmt.Sprintf("/v1/documents?id=hold-%d", i), pr)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer close(done)
			resp, err := client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		pw.Write([]byte("<a>"))
		holds = append(holds, held{w: pw, done: done})
	}

	// Wait until both held documents are actually inside the pool (one
	// being served, one queued) before expecting 429.
	deadlineOK := false
	for tries := 0; tries < 200; tries++ {
		st, err := srv.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Shards[0].QueueDepth >= 1 {
			deadlineOK = true
			break
		}
		code, _, _ := postDocument(t, client, ts.URL, "probe", "<a></a>")
		if code == http.StatusTooManyRequests {
			deadlineOK = true
			break
		}
	}
	if !deadlineOK {
		t.Fatal("never saturated the depth-1 queue")
	}

	resp, err := client.Post(ts.URL+"/v1/documents?id=overflow", "text/plain", strings.NewReader("<a></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Release the held documents and let them finish.
	for _, h := range holds {
		h.w.Write([]byte("</a>"))
		h.w.Close()
		<-h.done
	}

	// Malformed document: 400 with a JSON error envelope.
	code, _, body := postDocument(t, client, ts.URL, "bad", "<a unterminated")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed document: status %d, body %s", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Fatalf("malformed document: body %q is not an error envelope", body)
	}

	// Oversized body: 413.
	srv2, ts2 := testServer(t, Config{Shards: 1, MaxBodyBytes: 64})
	_ = srv2
	big := "<a>" + strings.Repeat("x ", 200) + "</a>"
	code, _, body = postDocument(t, ts2.Client(), ts2.URL, "big", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, body %s", code, body)
	}

	// Closed server: every endpoint answers 503 with Retry-After.
	srv.Close()
	resp, err = client.Post(ts.URL+"/v1/documents?id=late", "text/plain", strings.NewReader("<a></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestStatusAndMetrics checks the observability surfaces: /v1/status
// carries the bundle identity in the same schema `nwtool bundle -json`
// prints plus coherent counters, and /metrics speaks enough Prometheus
// text exposition for a scraper (counter lines, per-shard labels, a
// cumulative latency histogram ending in +Inf).
func TestStatusAndMetrics(t *testing.T) {
	bundle := writeTestBundle(t)
	srv, ts := testServer(t, Config{BundlePath: bundle, Shards: 2, QueueDepth: 8})
	client := ts.Client()

	rng := rand.New(rand.NewSource(47))
	corpus := testCorpus(rng, 40)
	for i, doc := range corpus {
		if code, _, body := postDocument(t, client, ts.URL, fmt.Sprintf("doc-%d", i), doc); code != http.StatusOK {
			t.Fatalf("doc %d: status %d, body %s", i, code, body)
		}
	}

	resp, err := client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Served != int64(len(corpus)) {
		t.Errorf("status served %d, want %d", st.Served, len(corpus))
	}
	if st.BundleInfo.Generation != 1 || st.BundleInfo.Path != bundle {
		t.Errorf("bundle identity %+v", st.BundleInfo)
	}
	if got := len(st.BundleInfo.Bundle.Queries); got != 3 {
		t.Errorf("bundle description has %d queries, want 3", got)
	}
	if len(st.ShardStats) != 2 || st.Shards != 2 || st.QueueCap != 8 {
		t.Errorf("pool shape: %+v", st)
	}
	var shardSum int64
	for _, sh := range st.ShardStats {
		shardSum += sh.Served
	}
	if shardSum != st.Served {
		t.Errorf("per-shard served sums to %d, aggregate %d", shardSum, st.Served)
	}
	if st.LatencyP50Sec <= 0 || st.LatencyP99Sec < st.LatencyP50Sec {
		t.Errorf("latency quantiles: %+v", st)
	}

	// The status bundle description must equal Describe of the file on
	// disk — the one-schema satellite.
	b, err := query.OpenBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := query.Describe(b)
	b.Close()
	if fmt.Sprint(st.BundleInfo.Bundle) != fmt.Sprint(onDisk) {
		t.Errorf("status bundle desc %+v != on-disk desc %+v", st.BundleInfo.Bundle, onDisk)
	}

	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(metrics)
	for _, want := range []string{
		fmt.Sprintf("nwserved_documents_served_total %d", len(corpus)),
		`nwserved_shard_queue_depth{shard="0"}`,
		`nwserved_shard_queue_depth{shard="1"}`,
		"nwserved_bundle_generation 1",
		`nwserved_document_latency_seconds_bucket{le="+Inf"} 40`,
		"nwserved_document_latency_seconds_count 40",
		"# TYPE nwserved_document_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A reload resets per-generation counters and bumps the generation.
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.BundleInfo.Generation != 2 || st.Served != 0 || st.Reloads != 1 {
		t.Errorf("after reload: generation %d served %d reloads %d", st.BundleInfo.Generation, st.Served, st.Reloads)
	}
}

// TestReloadBadBundleKeepsServing checks the failure half of the reload
// contract: when the file on disk has gone bad, Reload fails and the old
// generation keeps serving untouched.
func TestReloadBadBundleKeepsServing(t *testing.T) {
	bundle := writeTestBundle(t)
	srv, ts := testServer(t, Config{BundlePath: bundle, Shards: 2})
	client := ts.Client()

	if err := os.WriteFile(bundle, []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of a corrupt bundle: status %d, want 500", resp.StatusCode)
	}
	info, err := srv.BundleInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 {
		t.Fatalf("generation moved to %d after a failed reload", info.Generation)
	}
	if code, res, body := postDocument(t, client, ts.URL, "still-up", "<a><c>x</c></a>"); code != http.StatusOK || len(res.Verdicts) != 3 {
		t.Fatalf("old generation stopped serving: status %d, body %s", code, body)
	}
}
