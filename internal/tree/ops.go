package tree

// This file implements tree operations lifted from / compared against the
// nested-word operations of Section 2.4: insertion, subtree deletion, and
// subtree substitution, plus binary-tree helpers used by the tree-automata
// substrate.

// InsertBelow returns a copy of host in which, below every node labelled
// sym, the subtree ins is appended as a new last child.  On the nested-word
// side this is exactly Insert(t_nw(host), sym, t_nw(ins)) restricted to tree
// words whose sym-labelled positions are returns; the more faithful
// correspondence used in tests is via the nested-word operation directly.
func InsertBelow(host *Tree, sym string, ins *Tree) *Tree {
	if host == nil {
		return nil
	}
	children := make([]*Tree, 0, len(host.Children)+1)
	for _, c := range host.Children {
		children = append(children, InsertBelow(c, sym, ins))
	}
	if host.Label == sym && ins != nil {
		children = append(children, ins.Clone())
	}
	return &Tree{Label: host.Label, Children: children}
}

// DeleteLabelled returns a copy of host in which every maximal subtree whose
// root is labelled sym has been deleted (the nested-word subtree deletion of
// Section 2.4 applied at every sym-labelled call).  Deleting the root of the
// whole tree yields the empty tree.
func DeleteLabelled(host *Tree, sym string) *Tree {
	if host == nil || host.Label == sym {
		return nil
	}
	children := make([]*Tree, 0, len(host.Children))
	for _, c := range host.Children {
		if d := DeleteLabelled(c, sym); d != nil {
			children = append(children, d)
		}
	}
	return &Tree{Label: host.Label, Children: children}
}

// SubstituteLabelled returns a copy of host in which every maximal subtree
// whose root is labelled sym has been replaced by repl (nested-word subtree
// substitution applied at every sym-labelled call).
func SubstituteLabelled(host *Tree, sym string, repl *Tree) *Tree {
	if host == nil {
		return nil
	}
	if host.Label == sym {
		return repl.Clone()
	}
	children := make([]*Tree, 0, len(host.Children))
	for _, c := range host.Children {
		if s := SubstituteLabelled(c, sym, repl); s != nil {
			children = append(children, s)
		}
	}
	return &Tree{Label: host.Label, Children: children}
}

// IsBinary reports whether every node has at most two children.
func (t *Tree) IsBinary() bool { return t.Arity() <= 2 }

// IsUnary reports whether every node has at most one child, i.e. the tree is
// a path (the shape underlying the path languages of Section 3.6).
func (t *Tree) IsUnary() bool { return t.Arity() <= 1 }

// FirstChildNextSibling converts an unranked ordered tree to its standard
// binary encoding: the left child of a node encodes its first child and the
// right child encodes its next sibling.  Nodes of the encoding are labelled
// with the original labels; missing children are nil.  The encoding of the
// empty tree is nil.
//
// The binary encoding is the bridge between unranked tree automata and
// binary-tree automata used by the treeauto package.
func FirstChildNextSibling(t *Tree) *BinaryNode {
	return fcnsForest([]*Tree{t})
}

// fcnsForest encodes a forest: the first tree becomes the root, its first
// child becomes the left child, and the remaining trees become the right
// spine.
func fcnsForest(forest []*Tree) *BinaryNode {
	forest = dropNil(forest)
	if len(forest) == 0 {
		return nil
	}
	head := forest[0]
	return &BinaryNode{
		Label: head.Label,
		Left:  fcnsForest(head.Children),
		Right: fcnsForest(forest[1:]),
	}
}

func dropNil(forest []*Tree) []*Tree {
	out := forest[:0:0]
	for _, t := range forest {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// BinaryNode is a node of a binary tree in which either child may be absent.
// It is used for the first-child/next-sibling encoding and by the binary
// bottom-up tree automata of the treeauto package.
type BinaryNode struct {
	Label string
	Left  *BinaryNode
	Right *BinaryNode
}

// Size returns the number of nodes of the binary tree.
func (b *BinaryNode) Size() int {
	if b == nil {
		return 0
	}
	return 1 + b.Left.Size() + b.Right.Size()
}

// Height returns the height of the binary tree (0 for nil).
func (b *BinaryNode) Height() int {
	if b == nil {
		return 0
	}
	lh, rh := b.Left.Height(), b.Right.Height()
	if lh > rh {
		return lh + 1
	}
	return rh + 1
}

// Equal reports structural equality of binary trees.
func (b *BinaryNode) Equal(c *BinaryNode) bool {
	if b == nil || c == nil {
		return b == nil && c == nil
	}
	return b.Label == c.Label && b.Left.Equal(c.Left) && b.Right.Equal(c.Right)
}

// FromFirstChildNextSibling inverts FirstChildNextSibling, reconstructing
// the unranked tree from its binary encoding.  If the encoding has a
// non-nil right child at the root (i.e. it encodes a forest of more than one
// tree), only the first tree is returned by FromFirstChildNextSibling;
// use FromFCNSForest to recover the whole forest.
func FromFirstChildNextSibling(b *BinaryNode) *Tree {
	forest := FromFCNSForest(b)
	if len(forest) == 0 {
		return nil
	}
	return forest[0]
}

// FromFCNSForest decodes a first-child/next-sibling encoding into the forest
// it represents.
func FromFCNSForest(b *BinaryNode) []*Tree {
	var forest []*Tree
	for cur := b; cur != nil; cur = cur.Right {
		forest = append(forest, New(cur.Label, FromFCNSForest(cur.Left)...))
	}
	return forest
}
