// Package tree implements ordered (unranked) trees and their encodings as
// nested words, following Section 2.3 of "Marrying Words and Trees"
// (Alur, PODS 2007).
//
// The set OT(Σ) of ordered trees over Σ is defined inductively: ε is the
// empty tree, and a(t1,...,tn) is the tree with an a-labelled root and the
// non-empty children t1...tn in that order.  Binary and ranked trees are the
// obvious special cases and need no separate representation.
//
// The encoding t_w prints an a-labelled node as an a-labelled call, then the
// children in order, then an a-labelled return; t_nw = w_nw ∘ t_w is a
// bijection between OT(Σ) and the tree words TW(Σ), with inverse nw_t.
package tree

import (
	"fmt"
	"strings"

	"repro/internal/nestedword"
)

// Tree is an ordered unranked tree.  The nil *Tree is the empty tree ε.
// Children are non-empty by construction (the constructor drops nil
// children, mirroring the paper's requirement that each ti ≠ ε).
type Tree struct {
	// Label is the symbol at the root.
	Label string
	// Children are the ordered, non-empty subtrees.
	Children []*Tree
}

// New builds the tree a(children...).  Nil (empty) children are dropped, so
// New("a") is the leaf a().
func New(label string, children ...*Tree) *Tree {
	kept := make([]*Tree, 0, len(children))
	for _, c := range children {
		if c != nil {
			kept = append(kept, c)
		}
	}
	return &Tree{Label: label, Children: kept}
}

// Leaf builds the single-node tree a().
func Leaf(label string) *Tree { return New(label) }

// IsEmpty reports whether t is the empty tree ε.
func (t *Tree) IsEmpty() bool { return t == nil }

// IsLeaf reports whether t is a non-empty tree with no children.
func (t *Tree) IsLeaf() bool { return t != nil && len(t.Children) == 0 }

// Size returns the number of nodes.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Height returns the height of the tree: 0 for the empty tree, 1 for a leaf.
func (t *Tree) Height() int {
	if t == nil {
		return 0
	}
	best := 0
	for _, c := range t.Children {
		if h := c.Height(); h > best {
			best = h
		}
	}
	return best + 1
}

// Arity returns the maximum number of children of any node (0 for the empty
// tree).  A tree with Arity ≤ 2 is a binary tree, Arity ≤ 1 a unary tree
// (a path).
func (t *Tree) Arity() int {
	if t == nil {
		return 0
	}
	best := len(t.Children)
	for _, c := range t.Children {
		if a := c.Arity(); a > best {
			best = a
		}
	}
	return best
}

// Equal reports structural equality of two trees.
func (t *Tree) Equal(u *Tree) bool {
	if t == nil || u == nil {
		return t == nil && u == nil
	}
	if t.Label != u.Label || len(t.Children) != len(u.Children) {
		return false
	}
	for i := range t.Children {
		if !t.Children[i].Equal(u.Children[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	children := make([]*Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = c.Clone()
	}
	return &Tree{Label: t.Label, Children: children}
}

// String renders the tree in the term notation of the paper, e.g.
// "a(a(),b())" for the tree of Figure 1.
func (t *Tree) String() string {
	if t == nil {
		return "ε"
	}
	var b strings.Builder
	t.writeTerm(&b)
	return b.String()
}

func (t *Tree) writeTerm(b *strings.Builder) {
	b.WriteString(t.Label)
	b.WriteByte('(')
	for i, c := range t.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.writeTerm(b)
	}
	b.WriteByte(')')
}

// Labels returns the set of labels occurring in the tree, sorted.
func (t *Tree) Labels() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Tree)
	walk = func(u *Tree) {
		if u == nil {
			return
		}
		if !seen[u.Label] {
			seen[u.Label] = true
			out = append(out, u.Label)
		}
		for _, c := range u.Children {
			walk(c)
		}
	}
	walk(t)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CountLabel returns the number of nodes labelled sym.
func (t *Tree) CountLabel(sym string) int {
	if t == nil {
		return 0
	}
	n := 0
	if t.Label == sym {
		n = 1
	}
	for _, c := range t.Children {
		n += c.CountLabel(sym)
	}
	return n
}

// PreOrder returns the node labels in depth-first left-to-right (document)
// order.
func (t *Tree) PreOrder() []string {
	var out []string
	var walk func(*Tree)
	walk = func(u *Tree) {
		if u == nil {
			return
		}
		out = append(out, u.Label)
		for _, c := range u.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

// PostOrder returns the node labels in bottom-up left-to-right order.
func (t *Tree) PostOrder() []string {
	var out []string
	var walk func(*Tree)
	walk = func(u *Tree) {
		if u == nil {
			return
		}
		for _, c := range u.Children {
			walk(c)
		}
		out = append(out, u.Label)
	}
	walk(t)
	return out
}

// Path builds the unary tree (path) a1(a2(...(aℓ())...)) so that
// ToNestedWord(Path(w)) = nestedword.Path(w) — the path encoding of
// Section 2.2.  Path() is the empty tree.
func Path(symbols ...string) *Tree {
	var t *Tree
	for i := len(symbols) - 1; i >= 0; i-- {
		if t == nil {
			t = Leaf(symbols[i])
		} else {
			t = New(symbols[i], t)
		}
	}
	return t
}

// FullBinary builds the full binary tree of the given depth (depth 1 is a
// single leaf) with every node labelled label.  It is the workload of the
// Theorem 9 pumping argument (Figure 2).
func FullBinary(label string, depth int) *Tree {
	if depth <= 0 {
		return nil
	}
	if depth == 1 {
		return Leaf(label)
	}
	return New(label, FullBinary(label, depth-1), FullBinary(label, depth-1))
}

// Stem builds a unary chain of n label-labelled nodes terminated by the
// given subtree: label(label(...(subtree)...)).  With subtree == nil it is a
// path of n nodes.  It is the other half of the Figure 2 workload.
func Stem(label string, n int, subtree *Tree) *Tree {
	t := subtree
	for i := 0; i < n; i++ {
		if t == nil {
			t = Leaf(label)
		} else {
			t = New(label, t)
		}
	}
	return t
}

// ParseTerm parses the term notation produced by String, e.g. "a(b(),c(d()))".
// Leaves may be written either "a()" or just "a".  The empty input (or "ε")
// is the empty tree.
func ParseTerm(s string) (*Tree, error) {
	p := &termParser{input: strings.TrimSpace(s)}
	if p.input == "" || p.input == "ε" {
		return nil, nil
	}
	t, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("tree: trailing input at offset %d in %q", p.pos, p.input)
	}
	return t, nil
}

// MustParseTerm is ParseTerm that panics on error.
func MustParseTerm(s string) *Tree {
	t, err := ParseTerm(s)
	if err != nil {
		panic(err)
	}
	return t
}

type termParser struct {
	input string
	pos   int
}

func (p *termParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *termParser) parseTree() (*Tree, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("(),", rune(p.input[p.pos])) && p.input[p.pos] != ' ' {
		p.pos++
	}
	label := p.input[start:p.pos]
	if label == "" {
		return nil, fmt.Errorf("tree: expected a label at offset %d in %q", start, p.input)
	}
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return Leaf(label), nil
	}
	p.pos++ // consume '('
	p.skipSpace()
	var children []*Tree
	if p.pos < len(p.input) && p.input[p.pos] == ')' {
		p.pos++
		return New(label, children...), nil
	}
	for {
		child, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		p.skipSpace()
		if p.pos >= len(p.input) {
			return nil, fmt.Errorf("tree: unterminated child list in %q", p.input)
		}
		switch p.input[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return New(label, children...), nil
		default:
			return nil, fmt.Errorf("tree: unexpected character %q at offset %d in %q", p.input[p.pos], p.pos, p.input)
		}
	}
}

// ToNestedWord implements t_nw: it encodes the ordered tree as a tree word.
// The empty tree maps to the empty nested word.
func ToNestedWord(t *Tree) *nestedword.NestedWord {
	var ps []nestedword.Position
	var walk func(*Tree)
	walk = func(u *Tree) {
		if u == nil {
			return
		}
		ps = append(ps, nestedword.Position{Symbol: u.Label, Kind: nestedword.Call})
		for _, c := range u.Children {
			walk(c)
		}
		ps = append(ps, nestedword.Position{Symbol: u.Label, Kind: nestedword.Return})
	}
	walk(t)
	return nestedword.New(ps...)
}

// ForestToNestedWord encodes a forest (sequence of trees) as the
// concatenation of their tree words — the hedge-word encoding.
func ForestToNestedWord(forest ...*Tree) *nestedword.NestedWord {
	words := make([]*nestedword.NestedWord, 0, len(forest))
	for _, t := range forest {
		words = append(words, ToNestedWord(t))
	}
	return nestedword.Concat(words...)
}

// FromNestedWord implements nw_t: it decodes a tree word back into the
// ordered tree it represents.  It returns an error when the nested word is
// not a tree word (Section 2.3: rooted, no internals, matching positions
// agree on the symbol); the empty nested word decodes to the empty tree.
func FromNestedWord(n *nestedword.NestedWord) (*Tree, error) {
	if n.Len() == 0 {
		return nil, nil
	}
	if !n.IsTreeWord() {
		return nil, fmt.Errorf("tree: nested word %v is not a tree word", n)
	}
	t, next := decodeSubtree(n, 0)
	if next != n.Len() {
		return nil, fmt.Errorf("tree: tree word %v decodes with trailing positions", n)
	}
	return t, nil
}

// FromNestedWordForest decodes a hedge word (concatenation of tree words)
// into the forest it represents.
func FromNestedWordForest(n *nestedword.NestedWord) ([]*Tree, error) {
	if !n.IsHedgeWord() {
		return nil, fmt.Errorf("tree: nested word %v is not a hedge word", n)
	}
	var forest []*Tree
	i := 0
	for i < n.Len() {
		t, next := decodeSubtree(n, i)
		forest = append(forest, t)
		i = next
	}
	return forest, nil
}

// decodeSubtree decodes the rooted subword starting at call position i of a
// (validated) tree or hedge word and returns the subtree plus the position
// just after its return.
func decodeSubtree(n *nestedword.NestedWord, i int) (*Tree, int) {
	label := n.SymbolAt(i)
	ret, _ := n.ReturnSuccessor(i)
	var children []*Tree
	j := i + 1
	for j < ret {
		child, next := decodeSubtree(n, j)
		children = append(children, child)
		j = next
	}
	return New(label, children...), ret + 1
}

// ToTaggedString implements t_w as a printable string in Figure 1 notation:
// "<a <a a> <b b> a>" for a(a(),b()).
func ToTaggedString(t *Tree) string { return ToNestedWord(t).String() }
