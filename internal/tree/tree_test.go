package tree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/nestedword"
)

// figure1Tree is the tree a(a(),b()) of Figure 1 (the tree word n3).
func figure1Tree() *Tree { return New("a", Leaf("a"), Leaf("b")) }

func TestBasicsEmptyAndLeaf(t *testing.T) {
	var empty *Tree
	if !empty.IsEmpty() || empty.Size() != 0 || empty.Height() != 0 || empty.Arity() != 0 {
		t.Errorf("empty tree invariants broken")
	}
	if empty.String() != "ε" {
		t.Errorf("empty tree String = %q", empty.String())
	}
	l := Leaf("a")
	if l.IsEmpty() || !l.IsLeaf() || l.Size() != 1 || l.Height() != 1 {
		t.Errorf("leaf invariants broken")
	}
}

func TestNewDropsNilChildren(t *testing.T) {
	tr := New("a", nil, Leaf("b"), nil)
	if len(tr.Children) != 1 {
		t.Errorf("nil children should be dropped: %v", tr)
	}
}

func TestFigure1Tree(t *testing.T) {
	tr := figure1Tree()
	if tr.String() != "a(a(),b())" {
		t.Errorf("String = %q, want a(a(),b())", tr.String())
	}
	if tr.Size() != 3 || tr.Height() != 2 || tr.Arity() != 2 {
		t.Errorf("size/height/arity = %d/%d/%d, want 3/2/2", tr.Size(), tr.Height(), tr.Arity())
	}
	nw := ToNestedWord(tr)
	want := nestedword.MustParse("<a <a a> <b b> a>")
	if !nw.Equal(want) {
		t.Errorf("t_nw(a(a(),b())) = %v, want %v", nw, want)
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	trees := []*Tree{
		nil,
		Leaf("a"),
		figure1Tree(),
		New("a", New("b", Leaf("c"), Leaf("d")), Leaf("e"), New("f", Leaf("g"))),
		Path("a", "b", "c", "d"),
		FullBinary("x", 4),
	}
	for _, tr := range trees {
		nw := ToNestedWord(tr)
		back, err := FromNestedWord(nw)
		if err != nil {
			t.Fatalf("FromNestedWord(%v): %v", nw, err)
		}
		if !tr.Equal(back) {
			t.Errorf("round trip failed: %v -> %v -> %v", tr, nw, back)
		}
	}
}

func TestFromNestedWordRejectsNonTreeWords(t *testing.T) {
	for _, s := range []string{"a", "<a a> <b b>", "<a b>", "<a b a>", "<a <b"} {
		if _, err := FromNestedWord(nestedword.MustParse(s)); err == nil {
			t.Errorf("FromNestedWord(%q) should fail", s)
		}
	}
}

func TestForestEncoding(t *testing.T) {
	forest := []*Tree{Leaf("a"), figure1Tree(), Leaf("b")}
	nw := ForestToNestedWord(forest...)
	if !nw.IsHedgeWord() {
		t.Fatalf("forest encoding should be a hedge word: %v", nw)
	}
	back, err := FromNestedWordForest(nw)
	if err != nil {
		t.Fatalf("FromNestedWordForest: %v", err)
	}
	if len(back) != 3 {
		t.Fatalf("forest round trip length = %d, want 3", len(back))
	}
	for i := range forest {
		if !forest[i].Equal(back[i]) {
			t.Errorf("forest tree %d differs: %v vs %v", i, forest[i], back[i])
		}
	}
	if _, err := FromNestedWordForest(nestedword.MustParse("a")); err == nil {
		t.Errorf("non-hedge word should be rejected")
	}
}

func TestPathEncodingAgreement(t *testing.T) {
	// ToNestedWord(Path(w)) must agree with nestedword.Path(w) (Section 2.2).
	w := []string{"a", "b", "a", "c"}
	if got, want := ToNestedWord(Path(w...)), nestedword.Path(w...); !got.Equal(want) {
		t.Errorf("path encodings disagree: %v vs %v", got, want)
	}
	if Path() != nil {
		t.Errorf("Path() should be the empty tree")
	}
}

func TestFullBinaryAndStem(t *testing.T) {
	fb := FullBinary("b", 3)
	if fb.Size() != 7 || fb.Height() != 3 {
		t.Errorf("FullBinary(3): size=%d height=%d, want 7,3", fb.Size(), fb.Height())
	}
	if FullBinary("b", 0) != nil {
		t.Errorf("FullBinary(0) should be empty")
	}
	st := Stem("a", 4, Leaf("z"))
	if st.Size() != 5 || st.Height() != 5 || !st.IsUnary() {
		t.Errorf("Stem: size=%d height=%d unary=%v", st.Size(), st.Height(), st.IsUnary())
	}
	if Stem("a", 3, nil).Size() != 3 {
		t.Errorf("Stem with nil subtree should be a bare path")
	}
}

func TestParseTerm(t *testing.T) {
	cases := []struct {
		in   string
		want *Tree
	}{
		{"", nil},
		{"ε", nil},
		{"a", Leaf("a")},
		{"a()", Leaf("a")},
		{"a(a(),b())", figure1Tree()},
		{"a(b(c),d)", New("a", New("b", Leaf("c")), Leaf("d"))},
		{" a( b() , c() ) ", New("a", Leaf("b"), Leaf("c"))},
	}
	for _, c := range cases {
		got, err := ParseTerm(c.in)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseTerm(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, bad := range []string{"a(", "a(b", "a)b", "a(b(),", "(a)", "a(b())c"} {
		if _, err := ParseTerm(bad); err == nil {
			t.Errorf("ParseTerm(%q) should fail", bad)
		}
	}
}

func TestParseTermStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, 3, 3)
		back, err := ParseTerm(tr.String())
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", tr.String(), err)
		}
		if !tr.Equal(back) {
			t.Errorf("term round trip failed for %v", tr)
		}
	}
}

func TestPreAndPostOrder(t *testing.T) {
	tr := New("a", New("b", Leaf("c")), Leaf("d"))
	if got, want := tr.PreOrder(), []string{"a", "b", "c", "d"}; !reflect.DeepEqual(got, want) {
		t.Errorf("PreOrder = %v, want %v", got, want)
	}
	if got, want := tr.PostOrder(), []string{"c", "b", "d", "a"}; !reflect.DeepEqual(got, want) {
		t.Errorf("PostOrder = %v, want %v", got, want)
	}
}

func TestLabelsAndCount(t *testing.T) {
	tr := New("a", Leaf("b"), New("a", Leaf("c")))
	if got, want := tr.Labels(), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
	if tr.CountLabel("a") != 2 || tr.CountLabel("z") != 0 {
		t.Errorf("CountLabel broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := figure1Tree()
	cl := tr.Clone()
	cl.Children[0].Label = "mutated"
	if tr.Children[0].Label != "a" {
		t.Errorf("Clone must deep-copy")
	}
	var empty *Tree
	if empty.Clone() != nil {
		t.Errorf("Clone of empty tree should be nil")
	}
}

func TestInsertBelowMatchesNestedWordInsert(t *testing.T) {
	// Inserting tree word t_nw(ins) after every sym-labelled *return* of
	// t_nw(host) appends ins as a last child below every sym node.  We check
	// the correspondence by comparing against InsertBelow composed with the
	// tree encoding, filtering Insert to returns by using a host where sym
	// labels only one node.
	host := New("r", Leaf("x"), Leaf("y"))
	ins := Leaf("z")
	got := InsertBelow(host, "x", ins)
	want := New("r", New("x", Leaf("z")), Leaf("y"))
	if !got.Equal(want) {
		t.Errorf("InsertBelow = %v, want %v", got, want)
	}
	if InsertBelow(nil, "x", ins) != nil {
		t.Errorf("InsertBelow on empty tree should be empty")
	}
}

func TestDeleteAndSubstituteLabelled(t *testing.T) {
	host := New("a", New("b", Leaf("c")), Leaf("d"))
	if got, want := DeleteLabelled(host, "b"), New("a", Leaf("d")); !got.Equal(want) {
		t.Errorf("DeleteLabelled = %v, want %v", got, want)
	}
	if DeleteLabelled(host, "a") != nil {
		t.Errorf("deleting the root should yield the empty tree")
	}
	repl := Leaf("z")
	if got, want := SubstituteLabelled(host, "b", repl), New("a", Leaf("z"), Leaf("d")); !got.Equal(want) {
		t.Errorf("SubstituteLabelled = %v, want %v", got, want)
	}
	if got := SubstituteLabelled(host, "a", repl); !got.Equal(repl) {
		t.Errorf("substituting the root should yield the replacement")
	}
}

func TestFirstChildNextSiblingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, 3, 3)
		enc := FirstChildNextSibling(tr)
		if enc.Size() != tr.Size() {
			t.Errorf("FCNS must preserve node count: %d vs %d", enc.Size(), tr.Size())
		}
		back := FromFirstChildNextSibling(enc)
		if !tr.Equal(back) {
			t.Errorf("FCNS round trip failed for %v: got %v", tr, back)
		}
	}
	if FirstChildNextSibling(nil) != nil {
		t.Errorf("FCNS of empty tree should be nil")
	}
}

func TestFCNSForest(t *testing.T) {
	forest := []*Tree{Leaf("a"), New("b", Leaf("c"))}
	enc := fcnsForest(forest)
	back := FromFCNSForest(enc)
	if len(back) != 2 || !back[0].Equal(forest[0]) || !back[1].Equal(forest[1]) {
		t.Errorf("FCNS forest round trip failed: %v", back)
	}
	if enc.Height() < 1 || enc.Equal(nil) {
		t.Errorf("binary helpers broken")
	}
}

func TestBinaryAndUnaryPredicates(t *testing.T) {
	if !FullBinary("a", 3).IsBinary() {
		t.Errorf("full binary tree should be binary")
	}
	wide := New("a", Leaf("b"), Leaf("c"), Leaf("d"))
	if wide.IsBinary() {
		t.Errorf("3-ary node is not binary")
	}
	if !Path("a", "b").IsUnary() || wide.IsUnary() {
		t.Errorf("unary predicate broken")
	}
}

// randomTree builds a random tree with the given maximum depth and maximum
// branching factor over labels {a,b,c}.  It may return nil (the empty tree).
func randomTree(rng *rand.Rand, maxDepth, maxBranch int) *Tree {
	if maxDepth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(8) == 0 {
			return nil
		}
		return Leaf([]string{"a", "b", "c"}[rng.Intn(3)])
	}
	n := rng.Intn(maxBranch + 1)
	children := make([]*Tree, 0, n)
	for i := 0; i < n; i++ {
		children = append(children, randomTree(rng, maxDepth-1, maxBranch))
	}
	return New([]string{"a", "b", "c"}[rng.Intn(3)], children...)
}

func TestQuickEncodingBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4, 3)
		nw := ToNestedWord(tr)
		if tr != nil && !nw.IsTreeWord() {
			return false
		}
		back, err := FromNestedWord(nw)
		return err == nil && tr.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodingSizeAndDepth(t *testing.T) {
	// |t_nw(t)| = 2·size(t) and depth(t_nw(t)) = height(t).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4, 3)
		nw := ToNestedWord(tr)
		return nw.Len() == 2*tr.Size() && nw.Depth() == tr.Height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFCNSBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4, 3)
		return tr.Equal(FromFirstChildNextSibling(FirstChildNextSibling(tr)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
