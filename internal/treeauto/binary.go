package treeauto

import (
	"repro/internal/alphabet"
	"repro/internal/tree"
)

// BottomUpBinary is a deterministic bottom-up tree automaton over binary
// trees in which either child may be absent (the shape produced by the
// first-child/next-sibling encoding of unranked trees).  The absent child is
// assigned the designated empty state; a node labelled a with child states
// (l, r) gets the state δ(l, r, a).
type BottomUpBinary struct {
	alpha  *alphabet.Alphabet
	num    int
	empty  int
	dead   int
	accept []bool
	// delta[(l*num+r)*|Σ|+a]
	delta []int
}

// BottomUpBinaryBuilder assembles a BottomUpBinary automaton.
type BottomUpBinaryBuilder struct {
	a *BottomUpBinary
}

// NewBottomUpBinaryBuilder creates a builder with numStates user states plus
// a designated empty state (index numStates) and a dead state (index
// numStates+1); unspecified transitions lead to the dead state.
func NewBottomUpBinaryBuilder(alpha *alphabet.Alphabet, numStates int) *BottomUpBinaryBuilder {
	n := numStates + 2
	a := &BottomUpBinary{
		alpha:  alpha,
		num:    n,
		empty:  numStates,
		dead:   numStates + 1,
		accept: make([]bool, n),
		delta:  make([]int, n*n*alpha.Size()),
	}
	for i := range a.delta {
		a.delta[i] = a.dead
	}
	return &BottomUpBinaryBuilder{a: a}
}

// Empty returns the state assigned to absent children.
func (b *BottomUpBinaryBuilder) Empty() int { return b.a.empty }

// Transition sets δ(left, right, sym) = to.
func (b *BottomUpBinaryBuilder) Transition(left, right int, sym string, to int) *BottomUpBinaryBuilder {
	b.a.delta[(left*b.a.num+right)*b.a.alpha.Size()+b.a.alpha.MustIndex(sym)] = to
	return b
}

// Leaf sets the state of sym-labelled leaves: δ(empty, empty, sym) = to.
func (b *BottomUpBinaryBuilder) Leaf(sym string, to int) *BottomUpBinaryBuilder {
	return b.Transition(b.a.empty, b.a.empty, sym, to)
}

// Accept marks states as final.
func (b *BottomUpBinaryBuilder) Accept(states ...int) *BottomUpBinaryBuilder {
	for _, q := range states {
		b.a.accept[q] = true
	}
	return b
}

// Build returns the completed automaton.
func (b *BottomUpBinaryBuilder) Build() *BottomUpBinary { return b.a }

// NumStates returns the number of states (including empty and dead).
func (a *BottomUpBinary) NumStates() int { return a.num }

// EmptyState returns the state of absent children.
func (a *BottomUpBinary) EmptyState() int { return a.empty }

// IsAccepting reports whether q is final.
func (a *BottomUpBinary) IsAccepting(q int) bool { return q >= 0 && q < a.num && a.accept[q] }

// Eval returns the state of the root of the binary tree (the empty state for
// the nil tree).
func (a *BottomUpBinary) Eval(t *tree.BinaryNode) int {
	if t == nil {
		return a.empty
	}
	si, ok := a.alpha.Index(t.Label)
	if !ok {
		return a.dead
	}
	l := a.Eval(t.Left)
	r := a.Eval(t.Right)
	return a.delta[(l*a.num+r)*a.alpha.Size()+si]
}

// Accepts reports whether the automaton accepts the binary tree.
func (a *BottomUpBinary) Accepts(t *tree.BinaryNode) bool { return a.accept[a.Eval(t)] }

// AcceptsUnranked runs the automaton on the first-child/next-sibling
// encoding of an unranked ordered tree.
func (a *BottomUpBinary) AcceptsUnranked(t *tree.Tree) bool {
	return a.Accepts(tree.FirstChildNextSibling(t))
}

// TopDownBinary is a nondeterministic top-down tree automaton over binary
// trees: a set of initial states for the root, transitions
// (q, a) → (ql, qr) splitting the state to the two children, and leaf
// acceptance pairs (q, a).  The deterministic subclass has one initial state
// and at most one transition per (q, a).
type TopDownBinary struct {
	alpha  *alphabet.Alphabet
	num    int
	starts map[int]bool
	// trans[(q,a)] lists the (ql, qr) pairs.
	trans map[[2]int][][2]int
	// leaf[(q,a)] reports whether state q may accept an a-labelled leaf.
	leaf map[[2]int]bool
	// emptyOK[q] reports whether state q accepts an absent child.
	emptyOK map[int]bool
}

// NewTopDownBinary creates an empty top-down automaton with numStates
// states.
func NewTopDownBinary(alpha *alphabet.Alphabet, numStates int) *TopDownBinary {
	return &TopDownBinary{
		alpha:   alpha,
		num:     numStates,
		starts:  make(map[int]bool),
		trans:   make(map[[2]int][][2]int),
		leaf:    make(map[[2]int]bool),
		emptyOK: make(map[int]bool),
	}
}

// NumStates returns the number of states.
func (a *TopDownBinary) NumStates() int { return a.num }

// AddStart marks states as initial (assigned to the root).
func (a *TopDownBinary) AddStart(states ...int) *TopDownBinary {
	for _, q := range states {
		a.starts[q] = true
	}
	return a
}

// AddTransition adds (q, sym) → (left, right).
func (a *TopDownBinary) AddTransition(q int, sym string, left, right int) *TopDownBinary {
	k := [2]int{q, a.alpha.MustIndex(sym)}
	a.trans[k] = append(a.trans[k], [2]int{left, right})
	return a
}

// AddLeaf allows state q to accept a sym-labelled leaf.
func (a *TopDownBinary) AddLeaf(q int, sym string) *TopDownBinary {
	a.leaf[[2]int{q, a.alpha.MustIndex(sym)}] = true
	return a
}

// AllowEmpty allows state q to accept an absent child.
func (a *TopDownBinary) AllowEmpty(states ...int) *TopDownBinary {
	for _, q := range states {
		a.emptyOK[q] = true
	}
	return a
}

// IsDeterministic reports whether the automaton has one initial state and at
// most one transition per (state, symbol).
func (a *TopDownBinary) IsDeterministic() bool {
	if len(a.starts) != 1 {
		return false
	}
	for _, targets := range a.trans {
		if len(targets) > 1 {
			return false
		}
	}
	return true
}

// accepts reports whether state q accepts the binary tree t.
func (a *TopDownBinary) acceptsFrom(q int, t *tree.BinaryNode) bool {
	if t == nil {
		return a.emptyOK[q]
	}
	si, ok := a.alpha.Index(t.Label)
	if !ok {
		return false
	}
	if t.Left == nil && t.Right == nil && a.leaf[[2]int{q, si}] {
		return true
	}
	for _, lr := range a.trans[[2]int{q, si}] {
		if a.acceptsFrom(lr[0], t.Left) && a.acceptsFrom(lr[1], t.Right) {
			return true
		}
	}
	return false
}

// Accepts reports whether some run of the automaton accepts the binary tree.
func (a *TopDownBinary) Accepts(t *tree.BinaryNode) bool {
	for q := range a.starts {
		if a.acceptsFrom(q, t) {
			return true
		}
	}
	return false
}
