package treeauto

import (
	"repro/internal/alphabet"
	"repro/internal/nwa"
	"repro/internal/word"
)

// Path languages (Section 3.6).  For a word language L ⊆ Σ*, path(L) is the
// language of tree words path(w) = ⟨w1 ... ⟨wℓ wℓ⟩ ... w1⟩ for w ∈ L.  Over
// unary trees the many flavours of tree automata collapse to two, and
// Lemma 3 identifies them with word automata:
//
//   - a deterministic top-down tree automaton for path(L) with s states
//     exists iff a deterministic word automaton for L with s states exists;
//   - a deterministic bottom-up tree automaton for path(L) with s states
//     exists iff a deterministic word automaton for the reverse language L^R
//     with s states exists.
//
// Experiment E9 (Theorem 8) uses these correspondences to measure the
// minimal deterministic top-down and bottom-up sizes of the path family
// L_s = Σ^s a Σ* a Σ^s, which are both exponential while a (joinful) NWA
// needs only O(s) states.

// MinimalTopDownPathStates returns the number of states of the minimal
// deterministic top-down tree automaton for path(L(dfa)) — by Lemma 3, the
// size of the minimal DFA for L.
func MinimalTopDownPathStates(dfa *word.DFA) int { return dfa.Minimize().NumStates() }

// MinimalBottomUpPathStates returns the number of states of the minimal
// deterministic bottom-up tree automaton for path(L(dfa)) — by Lemma 3, the
// size of the minimal DFA for the reverse language.
func MinimalBottomUpPathStates(dfa *word.DFA) int { return dfa.Reverse().Minimize().NumStates() }

// TopDownPathJNWA builds a deterministic top-down nested word automaton (a
// joinless automaton all of whose states are hierarchical, Section 3.5)
// whose tree-word language is exactly { path(w) : w ∈ L(dfa) }.  It
// witnesses the "only if" direction of Lemma 3: the DFA runs down the calls
// of the path, the innermost state is accepting exactly when the DFA
// accepts, and each hierarchical edge remembers the call symbol so that the
// matching return is checked on the way out.
//
// As with the top-down tree automata of Lemma 2, the correspondence is about
// tree words: on words that are not well matched (for example a bare pending
// call) the automaton's verdict is unconstrained, because top-down automata
// cannot detect that a call is never answered.
//
// The automaton has |dfa| + |Σ| + 1 states.
func TopDownPathJNWA(dfa *word.DFA, alpha *alphabet.Alphabet) *nwa.JNWA {
	sigma := alpha.Size()
	n := dfa.NumStates()
	run := func(q int) int { return q }        // DFA run down the calls
	expect := func(a int) int { return n + a } // edge: the return must be a-labelled
	done := n + sigma                          // all checks on this level passed
	total := done + 1

	j := nwa.NewJNWA(alpha, total)
	for q := 0; q < total; q++ {
		j.MarkHierarchical(q)
	}
	j.AddStart(run(dfa.Start()))
	j.AddAccept(done)
	for q := 0; q < n; q++ {
		if dfa.IsAccepting(q) {
			j.AddAccept(run(q))
		}
	}
	for q := 0; q < n; q++ {
		for a := 0; a < sigma; a++ {
			sym := alpha.Symbol(a)
			next, ok := dfa.Step(q, sym)
			if !ok {
				continue
			}
			// Reading an a-labelled call: the inner branch continues the DFA
			// run; the hierarchical edge records that the matching return
			// must be labelled a.
			j.AddCall(run(q), sym, run(next), expect(a))
		}
	}
	for a := 0; a < sigma; a++ {
		// The edge state fires only on the recorded symbol; the joinless
		// return rule additionally demands that the inner branch ended in an
		// accepting state, which at the innermost level is the DFA
		// acceptance check and at outer levels is the `done` state.
		j.AddReturn(expect(a), alpha.Symbol(a), done)
	}
	return j
}
