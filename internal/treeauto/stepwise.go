// Package treeauto implements the tree-automata substrates that the paper
// compares nested word automata against (Sections 3.4–3.6):
//
//   - stepwise bottom-up tree automata for unranked ordered trees
//     (Brüggemann-Klein/Murata/Wood, Martens/Niehren), which over tree words
//     are exactly weak bottom-up NWAs whose return transitions ignore the
//     return symbol (Lemma 1);
//   - classical bottom-up tree automata for binary trees;
//   - top-down tree automata for binary trees and for paths (unary trees),
//     which over tree words correspond to top-down NWAs (Lemma 2) and, over
//     paths, to word automata reading the path label sequence (Lemma 3).
package treeauto

import (
	"repro/internal/alphabet"
	"repro/internal/nwa"
	"repro/internal/tree"
)

// Stepwise is a deterministic stepwise bottom-up tree automaton over
// unranked ordered trees.  A node labelled a starts in the initial state
// init(a); the states of its children are folded in from left to right with
// the binary transition function step; the tree is accepted when the state
// of the root is final.
type Stepwise struct {
	alpha *alphabet.Alphabet
	num   int
	// initState[s] is the state assigned to an s-labelled node before any of
	// its children have been processed.
	initState []int
	// step[parent*num+child] is the state of the parent after folding in a
	// completed child.
	step   []int
	accept []bool
	dead   int
}

// StepwiseBuilder assembles a stepwise automaton.
type StepwiseBuilder struct {
	a *Stepwise
}

// NewStepwiseBuilder creates a builder with numStates user states over the
// given alphabet; a dead state is appended automatically and all unspecified
// transitions lead to it.
func NewStepwiseBuilder(alpha *alphabet.Alphabet, numStates int) *StepwiseBuilder {
	n := numStates + 1
	a := &Stepwise{
		alpha:     alpha,
		num:       n,
		initState: make([]int, alpha.Size()),
		step:      make([]int, n*n),
		accept:    make([]bool, n),
		dead:      numStates,
	}
	for i := range a.initState {
		a.initState[i] = a.dead
	}
	for i := range a.step {
		a.step[i] = a.dead
	}
	return &StepwiseBuilder{a: a}
}

// Init sets the initial state of sym-labelled nodes.
func (b *StepwiseBuilder) Init(sym string, q int) *StepwiseBuilder {
	b.a.initState[b.a.alpha.MustIndex(sym)] = q
	return b
}

// Step sets step(parent, child) = to.
func (b *StepwiseBuilder) Step(parent, child, to int) *StepwiseBuilder {
	b.a.step[parent*b.a.num+child] = to
	return b
}

// Accept marks states as final.
func (b *StepwiseBuilder) Accept(states ...int) *StepwiseBuilder {
	for _, q := range states {
		b.a.accept[q] = true
	}
	return b
}

// Build returns the completed automaton.
func (b *StepwiseBuilder) Build() *Stepwise { return b.a }

// Alphabet returns the automaton's alphabet.
func (s *Stepwise) Alphabet() *alphabet.Alphabet { return s.alpha }

// NumStates returns the number of states including the dead state.
func (s *Stepwise) NumStates() int { return s.num }

// IsAccepting reports whether q is final.
func (s *Stepwise) IsAccepting(q int) bool { return q >= 0 && q < s.num && s.accept[q] }

// Eval returns the state assigned to the root of the tree, or ok=false for
// the empty tree or labels outside the alphabet.
func (s *Stepwise) Eval(t *tree.Tree) (int, bool) {
	if t == nil {
		return 0, false
	}
	si, ok := s.alpha.Index(t.Label)
	if !ok {
		return s.dead, true
	}
	q := s.initState[si]
	for _, c := range t.Children {
		cq, ok := s.Eval(c)
		if !ok {
			return s.dead, true
		}
		q = s.step[q*s.num+cq]
	}
	return q, true
}

// Accepts reports whether the automaton accepts the (non-empty) tree.
func (s *Stepwise) Accepts(t *tree.Tree) bool {
	q, ok := s.Eval(t)
	return ok && s.accept[q]
}

// ToBottomUpNWA implements Lemma 1: a stepwise bottom-up tree automaton with
// s states yields a bottom-up NWA with the same number of states accepting
// exactly the tree words of the accepted trees.
//
// The stepwise automaton is a weak bottom-up NWA on tree words whose return
// transition ignores the return symbol: reading the a-labelled call of a
// node enters init(a); reading the matching return folds the completed node
// state into its parent's state using step.
func (s *Stepwise) ToBottomUpNWA() *nwa.DNWA {
	// One extra "top" state marks the position before the root call of a
	// tree word; it only ever appears on the hierarchical edge of the root,
	// where the return transition keeps the root's own state so acceptance
	// can be read off the final linear state.  (Lemma 1 is about the user
	// states; the top and dead states are artifacts of the complete-function
	// representation used by this package.)
	top := s.num
	b := nwa.NewDNWABuilder(s.alpha, s.num+1)
	b.SetStart(top)
	for q := 0; q < s.num; q++ {
		if s.accept[q] {
			b.SetAccept(q)
		}
	}
	for si := 0; si < s.alpha.Size(); si++ {
		sym := s.alpha.Symbol(si)
		for q := 0; q <= s.num; q++ {
			// Calls: the linear successor is init(sym) regardless of the
			// current state (bottom-up); the hierarchical edge carries the
			// current state (weak).
			b.Call(q, sym, s.initState[si], q)
		}
		// Returns: fold the completed child state into the parent state on
		// the hierarchical edge; the return symbol is ignored (stepwise).
		for child := 0; child < s.num; child++ {
			b.Return(child, top, sym, child)
			for parent := 0; parent < s.num; parent++ {
				b.Return(child, parent, sym, s.step[parent*s.num+child])
			}
		}
	}
	return b.Build()
}
