package treeauto

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/nestedword"
	"repro/internal/tree"
	"repro/internal/word"
)

var ab = alphabet.New("a", "b")

// evenAStepwise builds a stepwise automaton over {a,b} accepting trees with
// an even number of a-labelled nodes.  States 0 = even, 1 = odd.
func evenAStepwise() *Stepwise {
	b := NewStepwiseBuilder(ab, 2)
	b.Init("a", 1).Init("b", 0)
	// Folding a child adds its parity to the parent's parity.
	b.Step(0, 0, 0).Step(0, 1, 1).Step(1, 0, 1).Step(1, 1, 0)
	b.Accept(0)
	return b.Build()
}

func evenAPredicate(t *tree.Tree) bool { return t.CountLabel("a")%2 == 0 }

// randomTree builds a random non-empty tree over {a,b}.
func randomTree(rng *rand.Rand, maxDepth, maxBranch int) *tree.Tree {
	label := []string{"a", "b"}[rng.Intn(2)]
	if maxDepth <= 1 || rng.Intn(3) == 0 {
		return tree.Leaf(label)
	}
	n := rng.Intn(maxBranch + 1)
	children := make([]*tree.Tree, 0, n)
	for i := 0; i < n; i++ {
		children = append(children, randomTree(rng, maxDepth-1, maxBranch))
	}
	return tree.New(label, children...)
}

func TestStepwiseEvenA(t *testing.T) {
	s := evenAStepwise()
	cases := []struct {
		term string
		want bool
	}{
		{"b", true},
		{"a", false},
		{"a(a)", true},
		{"a(b,a(a))", false},
		{"b(a,a)", true},
		{"b(b(b))", true},
	}
	for _, c := range cases {
		tr := tree.MustParseTerm(c.term)
		if got := s.Accepts(tr); got != c.want {
			t.Errorf("Accepts(%s) = %v, want %v", c.term, got, c.want)
		}
	}
	if _, ok := s.Eval(nil); ok {
		t.Errorf("Eval of the empty tree should report ok=false")
	}
	if s.Accepts(tree.Leaf("z")) {
		t.Errorf("labels outside the alphabet should be rejected")
	}
	if s.NumStates() != 3 {
		t.Errorf("NumStates = %d, want 3 (2 + dead)", s.NumStates())
	}
	if !s.IsAccepting(0) || s.IsAccepting(1) {
		t.Errorf("IsAccepting broken")
	}
	if s.Alphabet() != ab {
		t.Errorf("Alphabet accessor broken")
	}
}

func TestStepwiseAgainstPredicateRandom(t *testing.T) {
	s := evenAStepwise()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		tr := randomTree(rng, 4, 3)
		if got, want := s.Accepts(tr), evenAPredicate(tr); got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", tr, got, want)
		}
	}
}

func TestStepwiseToBottomUpNWALemma1(t *testing.T) {
	s := evenAStepwise()
	a := s.ToBottomUpNWA()
	if !a.IsBottomUp() {
		t.Fatalf("Lemma 1 embedding must be bottom-up")
	}
	if !a.IsWeak() {
		t.Fatalf("Lemma 1 embedding must be weak")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		tr := randomTree(rng, 4, 3)
		nw := tree.ToNestedWord(tr)
		if got, want := a.Accepts(nw), s.Accepts(tr); got != want {
			t.Fatalf("NWA and stepwise automaton disagree on %v: %v vs %v", tr, got, want)
		}
	}
}

func TestStepwiseToBottomUpNWARejectsNonTreeStructure(t *testing.T) {
	a := evenAStepwise().ToBottomUpNWA()
	// Plain internals are not tree words; the embedded automaton has no
	// internal transitions and must reject them.
	if a.Accepts(nestedword.MustParse("a b")) {
		t.Errorf("the embedding should reject words with internal positions")
	}
}

func TestBottomUpBinary(t *testing.T) {
	// Accept binary trees (both children possibly absent) whose leaves are
	// all a-labelled.  States: 0 = "all leaves a so far".
	b := NewBottomUpBinaryBuilder(ab, 1)
	e := b.Empty()
	b.Leaf("a", 0)
	b.Transition(0, 0, "a", 0).Transition(0, 0, "b", 0)
	b.Transition(0, e, "a", 0).Transition(0, e, "b", 0)
	b.Transition(e, 0, "a", 0).Transition(e, 0, "b", 0)
	b.Accept(0)
	auto := b.Build()

	allALeaves := func(t *tree.BinaryNode) bool {
		var walk func(*tree.BinaryNode) bool
		walk = func(u *tree.BinaryNode) bool {
			if u == nil {
				return true
			}
			if u.Left == nil && u.Right == nil {
				return u.Label == "a"
			}
			return walk(u.Left) && walk(u.Right)
		}
		return walk(t)
	}

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		tr := tree.FirstChildNextSibling(randomTree(rng, 4, 2))
		if got, want := auto.Accepts(tr), allALeaves(tr); got != want {
			t.Fatalf("Accepts disagrees with the predicate on %v", tr)
		}
	}
	if auto.Eval(nil) != auto.EmptyState() {
		t.Errorf("the empty tree evaluates to the empty state")
	}
	if auto.Accepts(&tree.BinaryNode{Label: "z"}) {
		t.Errorf("labels outside the alphabet must be rejected")
	}
	if auto.NumStates() != 3 {
		t.Errorf("NumStates = %d, want 3", auto.NumStates())
	}
	// AcceptsUnranked goes through the first-child/next-sibling encoding.
	if !auto.AcceptsUnranked(tree.MustParseTerm("a(a,a)")) {
		t.Errorf("AcceptsUnranked should accept a tree with only a-leaves")
	}
}

func TestTopDownBinary(t *testing.T) {
	// Accept full binary trees of even height with all nodes labelled b:
	// simpler — accept binary trees in which every path from the root to a
	// leaf has the same label sequence "b...b" and leaves are b-labelled.
	a := NewTopDownBinary(ab, 1)
	a.AddStart(0)
	a.AddTransition(0, "b", 0, 0)
	a.AddLeaf(0, "b")
	a.AllowEmpty(0)

	onlyB := func(t *tree.BinaryNode) bool {
		var walk func(*tree.BinaryNode) bool
		walk = func(u *tree.BinaryNode) bool {
			if u == nil {
				return true
			}
			return u.Label == "b" && walk(u.Left) && walk(u.Right)
		}
		return walk(t)
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		tr := tree.FirstChildNextSibling(randomTree(rng, 4, 2))
		if got, want := a.Accepts(tr), onlyB(tr); got != want {
			t.Fatalf("Accepts disagrees with the predicate on %v: %v vs %v", tr, got, want)
		}
	}
	if !a.IsDeterministic() {
		t.Errorf("this automaton is deterministic")
	}
	a.AddTransition(0, "b", 0, 0)
	a.AddTransition(0, "a", 0, 0)
	if a.NumStates() != 1 {
		t.Errorf("NumStates broken")
	}
	if a.Accepts(&tree.BinaryNode{Label: "z"}) {
		t.Errorf("labels outside the alphabet must be rejected")
	}
}

func TestTopDownBinaryNondeterministic(t *testing.T) {
	// "Some leaf is labelled a": nondeterministically guess the path to it.
	a := NewTopDownBinary(ab, 2)
	a.AddStart(0)
	for _, sym := range []string{"a", "b"} {
		// State 0 = still searching on this branch; state 1 = don't care.
		a.AddTransition(0, sym, 0, 1)
		a.AddTransition(0, sym, 1, 0)
		a.AddTransition(1, sym, 1, 1)
		a.AddLeaf(1, sym)
	}
	a.AddLeaf(0, "a")
	a.AllowEmpty(1)

	someALeaf := func(t *tree.BinaryNode) bool {
		var walk func(*tree.BinaryNode) bool
		walk = func(u *tree.BinaryNode) bool {
			if u == nil {
				return false
			}
			if u.Left == nil && u.Right == nil {
				return u.Label == "a"
			}
			return walk(u.Left) || walk(u.Right)
		}
		return walk(t)
	}

	if a.IsDeterministic() {
		t.Errorf("the gadget is nondeterministic")
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 300; i++ {
		tr := tree.FirstChildNextSibling(randomTree(rng, 4, 2))
		if got, want := a.Accepts(tr), someALeaf(tr); got != want {
			t.Fatalf("Accepts disagrees with the predicate on %v: %v vs %v", tr, got, want)
		}
	}
}

func TestPathSizesLemma3(t *testing.T) {
	// L = Σ^2 a: the minimal DFA is small, the reverse language a Σ^2 also;
	// the point here is only that the Lemma 3 helpers agree with the word
	// package's minimization.
	dfa := word.CompileRegexDFA(word.Concat(word.AnySymbol(), word.AnySymbol(), word.Symbol("a")), ab)
	if got, want := MinimalTopDownPathStates(dfa), dfa.Minimize().NumStates(); got != want {
		t.Errorf("MinimalTopDownPathStates = %d, want %d", got, want)
	}
	if got, want := MinimalBottomUpPathStates(dfa), dfa.Reverse().Minimize().NumStates(); got != want {
		t.Errorf("MinimalBottomUpPathStates = %d, want %d", got, want)
	}
	// "n-th symbol from the end is a" has a small reverse DFA but an
	// exponential forward DFA; the two measures must reflect that asymmetry.
	nthFromEnd := word.Concat(word.SigmaStar(), word.Symbol("a"), word.AnySymbol(), word.AnySymbol(), word.AnySymbol())
	d := word.CompileRegexDFA(nthFromEnd, ab)
	if MinimalTopDownPathStates(d) <= MinimalBottomUpPathStates(d) {
		t.Errorf("expected the top-down (forward DFA) size %d to exceed the bottom-up (reverse DFA) size %d",
			MinimalTopDownPathStates(d), MinimalBottomUpPathStates(d))
	}
}

func TestTopDownPathJNWA(t *testing.T) {
	// L = words over {a,b} ending in a.
	dfa := word.CompileRegexDFA(word.Concat(word.SigmaStar(), word.Symbol("a")), ab)
	j := TopDownPathJNWA(dfa, ab)
	if !j.IsTopDown() {
		t.Fatalf("the path automaton must be top-down (all states hierarchical)")
	}
	if !j.IsDeterministic() {
		t.Fatalf("the path automaton must be deterministic")
	}
	cases := []struct {
		word []string
		want bool
	}{
		{[]string{"a"}, true},
		{[]string{"b"}, false},
		{[]string{"a", "b", "a"}, true},
		{[]string{"a", "b"}, false},
		{[]string{"b", "b", "b", "a"}, true},
	}
	for _, c := range cases {
		n := nestedword.Path(c.word...)
		if got := j.Accepts(n); got != c.want {
			t.Errorf("Accepts(path(%v)) = %v, want %v", c.word, got, c.want)
		}
	}
	// Tree words that are not paths must be rejected.
	for _, s := range []string{"<a <a a> <a a> a>", "<a b a>", "<a a> <a a>", "<a <b a> b>"} {
		if j.Accepts(nestedword.MustParse(s)) {
			t.Errorf("non-path tree word %q must be rejected", s)
		}
	}
	// The empty path corresponds to the empty word: accepted iff ε ∈ L.
	if j.Accepts(nestedword.Empty()) {
		t.Errorf("ε ∉ L, so the empty nested word must be rejected")
	}
}
