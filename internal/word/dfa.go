// Package word implements classical finite-state word automata: DFAs, NFAs
// (with ε-transitions), subset-construction determinization, Hopcroft-style
// minimization, boolean operations, reversal, and a small regular-expression
// combinator library.
//
// The package is the "words" baseline of the paper "Marrying Words and
// Trees" (Alur, PODS 2007).  Flat nested word automata are equivalent to
// deterministic word automata over the tagged alphabet Σ̂ (Theorem 2), and
// the succinctness experiments E4, E9, and E10 measure the size of *minimal*
// DFAs produced by this package against nested word automata.
package word

import (
	"fmt"

	"repro/internal/alphabet"
)

// DFA is a complete deterministic finite word automaton.  States are dense
// integers 0..NumStates-1 and the transition table is total: every state has
// a successor on every alphabet symbol (builders add an explicit dead state
// where needed).
type DFA struct {
	alpha  *alphabet.Alphabet
	start  int
	accept []bool
	// delta[q][s] is the successor of state q on the symbol with index s.
	delta [][]int
}

// DFABuilder incrementally assembles a DFA.  Unspecified transitions go to
// an implicit dead (non-accepting, absorbing) state added by Build when
// needed.
type DFABuilder struct {
	alpha     *alphabet.Alphabet
	numStates int
	start     int
	accept    map[int]bool
	delta     map[[2]int]int
}

// NewDFABuilder creates a builder for a DFA over the given alphabet with the
// given number of states; the start state defaults to 0.
func NewDFABuilder(alpha *alphabet.Alphabet, numStates int) *DFABuilder {
	return &DFABuilder{
		alpha:     alpha,
		numStates: numStates,
		accept:    make(map[int]bool),
		delta:     make(map[[2]int]int),
	}
}

// SetStart sets the start state.
func (b *DFABuilder) SetStart(q int) *DFABuilder { b.start = q; return b }

// SetAccept marks states as accepting.
func (b *DFABuilder) SetAccept(states ...int) *DFABuilder {
	for _, q := range states {
		b.accept[q] = true
	}
	return b
}

// AddTransition adds δ(from, sym) = to.  It panics on unknown symbols or
// out-of-range states, which indicate programming errors in automaton
// construction code.
func (b *DFABuilder) AddTransition(from int, sym string, to int) *DFABuilder {
	s := b.alpha.MustIndex(sym)
	if from < 0 || from >= b.numStates || to < 0 || to >= b.numStates {
		panic(fmt.Sprintf("word: transition (%d,%q,%d) out of range [0,%d)", from, sym, to, b.numStates))
	}
	b.delta[[2]int{from, s}] = to
	return b
}

// Build completes the DFA.  If any transition is missing, a fresh dead state
// is appended and all missing transitions point to it.
func (b *DFABuilder) Build() *DFA {
	n := b.numStates
	needDead := false
	for q := 0; q < b.numStates && !needDead; q++ {
		for s := 0; s < b.alpha.Size(); s++ {
			if _, ok := b.delta[[2]int{q, s}]; !ok {
				needDead = true
				break
			}
		}
	}
	dead := -1
	if needDead || n == 0 {
		dead = n
		n++
	}
	d := &DFA{
		alpha:  b.alpha,
		start:  b.start,
		accept: make([]bool, n),
		delta:  make([][]int, n),
	}
	if n == 1 && b.numStates == 0 {
		d.start = dead
	}
	for q := 0; q < n; q++ {
		d.delta[q] = make([]int, b.alpha.Size())
		for s := 0; s < b.alpha.Size(); s++ {
			if q == dead {
				d.delta[q][s] = dead
				continue
			}
			if to, ok := b.delta[[2]int{q, s}]; ok {
				d.delta[q][s] = to
			} else {
				d.delta[q][s] = dead
			}
		}
	}
	for q := range b.accept {
		if b.accept[q] && q < len(d.accept) {
			d.accept[q] = true
		}
	}
	return d
}

// Alphabet returns the automaton's alphabet.
func (d *DFA) Alphabet() *alphabet.Alphabet { return d.alpha }

// NumStates returns the number of states (including any dead state).
func (d *DFA) NumStates() int { return len(d.delta) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// IsAccepting reports whether state q is accepting.
func (d *DFA) IsAccepting(q int) bool { return q >= 0 && q < len(d.accept) && d.accept[q] }

// Step returns δ(q, sym).  Unknown symbols return (-1, false).
func (d *DFA) Step(q int, sym string) (int, bool) {
	s, ok := d.alpha.Index(sym)
	if !ok || q < 0 || q >= len(d.delta) {
		return -1, false
	}
	return d.delta[q][s], true
}

// Accepts reports whether the DFA accepts the given word.  Words containing
// symbols outside the alphabet are rejected.
func (d *DFA) Accepts(word []string) bool {
	q := d.start
	for _, sym := range word {
		next, ok := d.Step(q, sym)
		if !ok {
			return false
		}
		q = next
	}
	return d.IsAccepting(q)
}

// IsEmpty reports whether L(d) = ∅, by reachability from the start state.
func (d *DFA) IsEmpty() bool {
	visited := make([]bool, d.NumStates())
	stack := []int{d.start}
	visited[d.start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.accept[q] {
			return false
		}
		for _, next := range d.delta[q] {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return true
}

// Complement returns a DFA accepting the complement language over the same
// alphabet.
func (d *DFA) Complement() *DFA {
	accept := make([]bool, len(d.accept))
	for i, a := range d.accept {
		accept[i] = !a
	}
	return &DFA{alpha: d.alpha, start: d.start, accept: accept, delta: d.delta}
}

// binaryOp builds the product DFA combining acceptance with the given
// boolean function.  Both automata must share the same alphabet.
func binaryOp(a, b *DFA, combine func(bool, bool) bool) *DFA {
	if !a.alpha.Equal(b.alpha) {
		panic("word: product of DFAs over different alphabets")
	}
	na, nb := a.NumStates(), b.NumStates()
	n := na * nb
	d := &DFA{
		alpha:  a.alpha,
		start:  a.start*nb + b.start,
		accept: make([]bool, n),
		delta:  make([][]int, n),
	}
	for qa := 0; qa < na; qa++ {
		for qb := 0; qb < nb; qb++ {
			q := qa*nb + qb
			d.accept[q] = combine(a.accept[qa], b.accept[qb])
			row := make([]int, a.alpha.Size())
			for s := 0; s < a.alpha.Size(); s++ {
				row[s] = a.delta[qa][s]*nb + b.delta[qb][s]
			}
			d.delta[q] = row
		}
	}
	return d
}

// Intersect returns a DFA for L(a) ∩ L(b).
func Intersect(a, b *DFA) *DFA {
	return binaryOp(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a DFA for L(a) ∪ L(b).
func Union(a, b *DFA) *DFA {
	return binaryOp(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a DFA for L(a) \ L(b).
func Difference(a, b *DFA) *DFA {
	return binaryOp(a, b, func(x, y bool) bool { return x && !y })
}

// Equivalent reports whether two DFAs over the same alphabet accept the same
// language (symmetric difference is empty).
func Equivalent(a, b *DFA) bool {
	return Difference(a, b).IsEmpty() && Difference(b, a).IsEmpty()
}

// Subset reports whether L(a) ⊆ L(b).
func Subset(a, b *DFA) bool { return Difference(a, b).IsEmpty() }

// Minimize returns the minimal complete DFA accepting the same language,
// computed by removing unreachable states and then refining the
// accepting/non-accepting partition to the Myhill–Nerode congruence
// (Moore's algorithm).  The number of states of the result is the
// right-congruence index used by the succinctness experiments.
func (d *DFA) Minimize() *DFA {
	// 1. Restrict to reachable states.
	reach := make([]int, d.NumStates())
	for i := range reach {
		reach[i] = -1
	}
	order := []int{d.start}
	reach[d.start] = 0
	for i := 0; i < len(order); i++ {
		q := order[i]
		for _, next := range d.delta[q] {
			if reach[next] == -1 {
				reach[next] = len(order)
				order = append(order, next)
			}
		}
	}
	n := len(order)
	delta := make([][]int, n)
	accept := make([]bool, n)
	for newQ, oldQ := range order {
		accept[newQ] = d.accept[oldQ]
		row := make([]int, d.alpha.Size())
		for s := 0; s < d.alpha.Size(); s++ {
			row[s] = reach[d.delta[oldQ][s]]
		}
		delta[newQ] = row
	}

	// 2. Partition refinement.
	part := make([]int, n)
	for q := 0; q < n; q++ {
		if accept[q] {
			part[q] = 1
		}
	}
	numBlocks := 2
	if n > 0 {
		allSame := true
		for q := 1; q < n; q++ {
			if accept[q] != accept[0] {
				allSame = false
				break
			}
		}
		if allSame {
			numBlocks = 1
			for q := range part {
				part[q] = 0
			}
		}
	}
	for {
		// Signature of a state: its block plus the blocks of its successors.
		type sig struct {
			block int
			succ  string
		}
		sigIndex := make(map[sig]int)
		newPart := make([]int, n)
		newBlocks := 0
		for q := 0; q < n; q++ {
			succ := make([]byte, 0, 4*d.alpha.Size())
			for s := 0; s < d.alpha.Size(); s++ {
				b := part[delta[q][s]]
				succ = append(succ, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
			}
			k := sig{block: part[q], succ: string(succ)}
			id, ok := sigIndex[k]
			if !ok {
				id = newBlocks
				newBlocks++
				sigIndex[k] = id
			}
			newPart[q] = id
		}
		if newBlocks == numBlocks {
			part = newPart
			break
		}
		part, numBlocks = newPart, newBlocks
	}

	// 3. Build the quotient automaton.
	m := &DFA{
		alpha:  d.alpha,
		start:  part[0], // state 0 of the reachable restriction is the start
		accept: make([]bool, numBlocks),
		delta:  make([][]int, numBlocks),
	}
	for q := 0; q < n; q++ {
		blk := part[q]
		if m.delta[blk] == nil {
			row := make([]int, d.alpha.Size())
			for s := 0; s < d.alpha.Size(); s++ {
				row[s] = part[delta[q][s]]
			}
			m.delta[blk] = row
			m.accept[blk] = accept[q]
		}
	}
	return m
}

// MinimalSize returns the number of states of the minimal DFA for L(d).
func (d *DFA) MinimalSize() int { return d.Minimize().NumStates() }

// ToNFA converts the DFA to an equivalent NFA.
func (d *DFA) ToNFA() *NFA {
	n := NewNFA(d.alpha, d.NumStates())
	n.AddStart(d.start)
	for q := 0; q < d.NumStates(); q++ {
		if d.accept[q] {
			n.AddAccept(q)
		}
		for s := 0; s < d.alpha.Size(); s++ {
			n.AddTransition(q, d.alpha.Symbol(s), d.delta[q][s])
		}
	}
	return n
}

// Reverse returns a DFA for the reversal language L(d)^R (via NFA reversal
// and determinization).
func (d *DFA) Reverse() *DFA { return d.ToNFA().Reverse().Determinize() }

// SomeWord returns a shortest word accepted by the DFA, and ok=false when
// the language is empty.
func (d *DFA) SomeWord() ([]string, bool) {
	type entry struct {
		state int
		word  []string
	}
	visited := make([]bool, d.NumStates())
	queue := []entry{{state: d.start, word: nil}}
	visited[d.start] = true
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if d.accept[e.state] {
			return e.word, true
		}
		for s := 0; s < d.alpha.Size(); s++ {
			next := d.delta[e.state][s]
			if !visited[next] {
				visited[next] = true
				w := append(append([]string(nil), e.word...), d.alpha.Symbol(s))
				queue = append(queue, entry{state: next, word: w})
			}
		}
	}
	return nil, false
}
