package word

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alphabet"
)

// evenAs builds a DFA over {a,b} accepting words with an even number of a's.
func evenAs() *DFA {
	alpha := alphabet.New("a", "b")
	b := NewDFABuilder(alpha, 2)
	b.SetStart(0).SetAccept(0)
	b.AddTransition(0, "a", 1).AddTransition(0, "b", 0)
	b.AddTransition(1, "a", 0).AddTransition(1, "b", 1)
	return b.Build()
}

// endsWithAB builds a DFA over {a,b} accepting words ending in "ab".
func endsWithAB() *DFA {
	alpha := alphabet.New("a", "b")
	b := NewDFABuilder(alpha, 3)
	b.SetStart(0).SetAccept(2)
	b.AddTransition(0, "a", 1).AddTransition(0, "b", 0)
	b.AddTransition(1, "a", 1).AddTransition(1, "b", 2)
	b.AddTransition(2, "a", 1).AddTransition(2, "b", 0)
	return b.Build()
}

func w(s string) []string {
	out := make([]string, 0, len(s))
	for _, r := range s {
		out = append(out, string(r))
	}
	return out
}

func TestDFAAccepts(t *testing.T) {
	d := evenAs()
	cases := map[string]bool{"": true, "a": false, "aa": true, "ab": false, "bab": false, "abab": true, "bbbb": true}
	for in, want := range cases {
		if got := d.Accepts(w(in)); got != want {
			t.Errorf("evenAs.Accepts(%q) = %v, want %v", in, got, want)
		}
	}
	if d.Accepts([]string{"z"}) {
		t.Errorf("symbols outside the alphabet must be rejected")
	}
}

func TestDFABuilderDeadState(t *testing.T) {
	alpha := alphabet.New("a", "b")
	b := NewDFABuilder(alpha, 2)
	b.SetStart(0).SetAccept(1)
	b.AddTransition(0, "a", 1)
	d := b.Build()
	// A dead state must have been added for the missing transitions.
	if d.NumStates() != 3 {
		t.Errorf("NumStates = %d, want 3 (2 + dead)", d.NumStates())
	}
	if !d.Accepts(w("a")) || d.Accepts(w("b")) || d.Accepts(w("ab")) {
		t.Errorf("partial DFA completion broken")
	}
}

func TestDFABuilderPanicsOnBadTransition(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range transition should panic")
		}
	}()
	NewDFABuilder(alphabet.New("a"), 1).AddTransition(0, "a", 5)
}

func TestDFAStepUnknownSymbol(t *testing.T) {
	d := evenAs()
	if _, ok := d.Step(0, "z"); ok {
		t.Errorf("Step on unknown symbol should report ok=false")
	}
	if _, ok := d.Step(-1, "a"); ok {
		t.Errorf("Step on invalid state should report ok=false")
	}
	if next, ok := d.Step(0, "a"); !ok || next != 1 {
		t.Errorf("Step(0,a) = (%d,%v), want (1,true)", next, ok)
	}
}

func TestComplement(t *testing.T) {
	d := evenAs()
	c := d.Complement()
	for _, in := range []string{"", "a", "aa", "aba", "bbb"} {
		if d.Accepts(w(in)) == c.Accepts(w(in)) {
			t.Errorf("complement should disagree with original on %q", in)
		}
	}
}

func TestBooleanOperations(t *testing.T) {
	a, b := evenAs(), endsWithAB()
	inter := Intersect(a, b)
	union := Union(a, b)
	diff := Difference(a, b)
	for _, in := range []string{"", "ab", "aab", "aabab", "ba", "abab"} {
		word := w(in)
		ia, ib := a.Accepts(word), b.Accepts(word)
		if inter.Accepts(word) != (ia && ib) {
			t.Errorf("Intersect wrong on %q", in)
		}
		if union.Accepts(word) != (ia || ib) {
			t.Errorf("Union wrong on %q", in)
		}
		if diff.Accepts(word) != (ia && !ib) {
			t.Errorf("Difference wrong on %q", in)
		}
	}
}

func TestProductPanicsOnAlphabetMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("product over different alphabets should panic")
		}
	}()
	other := NewDFABuilder(alphabet.New("x"), 1).Build()
	Intersect(evenAs(), other)
}

func TestEquivalentAndSubset(t *testing.T) {
	a := evenAs()
	// A non-minimal automaton for the same language: four states counting
	// a's mod 2 and b's mod 2, accepting when a-count is even.
	alpha := alphabet.New("a", "b")
	b := NewDFABuilder(alpha, 4)
	// state = 2*(aMod) + bMod
	b.SetStart(0).SetAccept(0, 1)
	for aMod := 0; aMod < 2; aMod++ {
		for bMod := 0; bMod < 2; bMod++ {
			q := 2*aMod + bMod
			b.AddTransition(q, "a", 2*((aMod+1)%2)+bMod)
			b.AddTransition(q, "b", 2*aMod+(bMod+1)%2)
		}
	}
	big := b.Build()
	if !Equivalent(a, big) {
		t.Errorf("evenAs and its 4-state variant should be equivalent")
	}
	if Equivalent(a, endsWithAB()) {
		t.Errorf("different languages reported equivalent")
	}
	if !Subset(Intersect(a, endsWithAB()), a) {
		t.Errorf("intersection should be a subset of each factor")
	}
	if Subset(a, Intersect(a, endsWithAB())) {
		t.Errorf("Subset should fail in the other direction")
	}
}

func TestMinimize(t *testing.T) {
	// The 4-state mod-counting automaton minimizes to the 2-state evenAs.
	alpha := alphabet.New("a", "b")
	b := NewDFABuilder(alpha, 4)
	b.SetStart(0).SetAccept(0, 1)
	for aMod := 0; aMod < 2; aMod++ {
		for bMod := 0; bMod < 2; bMod++ {
			q := 2*aMod + bMod
			b.AddTransition(q, "a", 2*((aMod+1)%2)+bMod)
			b.AddTransition(q, "b", 2*aMod+(bMod+1)%2)
		}
	}
	big := b.Build()
	min := big.Minimize()
	if min.NumStates() != 2 {
		t.Errorf("minimal size = %d, want 2", min.NumStates())
	}
	if !Equivalent(big, min) {
		t.Errorf("minimization must preserve the language")
	}
	if big.MinimalSize() != 2 {
		t.Errorf("MinimalSize = %d, want 2", big.MinimalSize())
	}
}

func TestMinimizeRemovesUnreachable(t *testing.T) {
	alpha := alphabet.New("a")
	b := NewDFABuilder(alpha, 5)
	b.SetStart(0).SetAccept(1)
	b.AddTransition(0, "a", 1).AddTransition(1, "a", 0)
	// States 2..4 are unreachable.
	b.AddTransition(2, "a", 3).AddTransition(3, "a", 4).AddTransition(4, "a", 2)
	d := b.Build()
	if got := d.Minimize().NumStates(); got != 2 {
		t.Errorf("Minimize kept unreachable states: %d states, want 2", got)
	}
}

func TestIsEmptyAndSomeWord(t *testing.T) {
	alpha := alphabet.New("a", "b")
	empty := NewDFABuilder(alpha, 1).Build() // no accepting states
	if !empty.IsEmpty() {
		t.Errorf("automaton without accepting states should be empty")
	}
	if _, ok := empty.SomeWord(); ok {
		t.Errorf("SomeWord on an empty language should fail")
	}
	d := endsWithAB()
	if d.IsEmpty() {
		t.Errorf("endsWithAB is not empty")
	}
	word, ok := d.SomeWord()
	if !ok || !d.Accepts(word) {
		t.Errorf("SomeWord returned (%v,%v), which is not accepted", word, ok)
	}
	if len(word) != 2 {
		t.Errorf("SomeWord should be shortest; got %v", word)
	}
}

func TestReverse(t *testing.T) {
	d := endsWithAB() // reversal: words starting with "ba"
	r := d.Reverse()
	cases := map[string]bool{"ba": true, "bab": true, "ab": false, "": false, "baa": true, "b": false}
	for in, want := range cases {
		if got := r.Accepts(w(in)); got != want {
			t.Errorf("Reverse.Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestToNFAPreservesLanguage(t *testing.T) {
	d := endsWithAB()
	n := d.ToNFA()
	for _, in := range []string{"", "ab", "aab", "ba", "abab", "abba"} {
		if d.Accepts(w(in)) != n.Accepts(w(in)) {
			t.Errorf("ToNFA disagrees on %q", in)
		}
	}
}

// randomDFA builds a random complete DFA with n states over {a,b}.
func randomDFA(rng *rand.Rand, n int) *DFA {
	alpha := alphabet.New("a", "b")
	b := NewDFABuilder(alpha, n)
	b.SetStart(rng.Intn(n))
	for q := 0; q < n; q++ {
		if rng.Intn(2) == 0 {
			b.SetAccept(q)
		}
		b.AddTransition(q, "a", rng.Intn(n))
		b.AddTransition(q, "b", rng.Intn(n))
	}
	return b.Build()
}

func randomWord(rng *rand.Rand, maxLen int) []string {
	l := rng.Intn(maxLen + 1)
	out := make([]string, l)
	for i := range out {
		out[i] = []string{"a", "b"}[rng.Intn(2)]
	}
	return out
}

func TestQuickMinimizePreservesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDFA(rng, 1+rng.Intn(8))
		m := d.Minimize()
		if m.NumStates() > d.NumStates() {
			return false
		}
		for i := 0; i < 30; i++ {
			word := randomWord(rng, 12)
			if d.Accepts(word) != m.Accepts(word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimalIsUnique(t *testing.T) {
	// Minimizing twice yields the same number of states, and two equivalent
	// random DFAs have minimal automata of the same size.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDFA(rng, 1+rng.Intn(8))
		m := d.Minimize()
		return m.Minimize().NumStates() == m.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDFA(rng, 1+rng.Intn(6))
		cc := d.Complement().Complement()
		for i := 0; i < 20; i++ {
			word := randomWord(rng, 10)
			if d.Accepts(word) != cc.Accepts(word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// complement(A ∪ B) ≡ complement(A) ∩ complement(B)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDFA(rng, 1+rng.Intn(5))
		b := randomDFA(rng, 1+rng.Intn(5))
		lhs := Union(a, b).Complement()
		rhs := Intersect(a.Complement(), b.Complement())
		return Equivalent(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDFA(rng, 1+rng.Intn(5))
		rr := d.Reverse().Reverse()
		return Equivalent(d.Minimize(), rr.Minimize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
