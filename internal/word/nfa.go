package word

import (
	"sort"

	"repro/internal/alphabet"
)

// NFA is a nondeterministic finite word automaton with ε-transitions.
// States are dense integers 0..NumStates-1.
type NFA struct {
	alpha  *alphabet.Alphabet
	starts map[int]bool
	accept map[int]bool
	// delta[q][s] is the set of successors of q on symbol index s.
	delta map[int]map[int]map[int]bool
	// eps[q] is the set of ε-successors of q.
	eps       map[int]map[int]bool
	numStates int
}

// NewNFA creates an NFA over the given alphabet with the given number of
// states and no transitions.
func NewNFA(alpha *alphabet.Alphabet, numStates int) *NFA {
	return &NFA{
		alpha:     alpha,
		starts:    make(map[int]bool),
		accept:    make(map[int]bool),
		delta:     make(map[int]map[int]map[int]bool),
		eps:       make(map[int]map[int]bool),
		numStates: numStates,
	}
}

// Alphabet returns the automaton's alphabet.
func (n *NFA) Alphabet() *alphabet.Alphabet { return n.alpha }

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return n.numStates }

// AddState appends a fresh state and returns its index.
func (n *NFA) AddState() int {
	q := n.numStates
	n.numStates++
	return q
}

// AddStart marks states as initial.
func (n *NFA) AddStart(states ...int) *NFA {
	for _, q := range states {
		n.starts[q] = true
	}
	return n
}

// AddAccept marks states as accepting.
func (n *NFA) AddAccept(states ...int) *NFA {
	for _, q := range states {
		n.accept[q] = true
	}
	return n
}

// AddTransition adds from --sym--> to.
func (n *NFA) AddTransition(from int, sym string, to int) *NFA {
	s := n.alpha.MustIndex(sym)
	if n.delta[from] == nil {
		n.delta[from] = make(map[int]map[int]bool)
	}
	if n.delta[from][s] == nil {
		n.delta[from][s] = make(map[int]bool)
	}
	n.delta[from][s][to] = true
	return n
}

// AddEpsilon adds an ε-transition from --ε--> to.
func (n *NFA) AddEpsilon(from, to int) *NFA {
	if n.eps[from] == nil {
		n.eps[from] = make(map[int]bool)
	}
	n.eps[from][to] = true
	return n
}

// Starts returns the set of initial states, sorted.
func (n *NFA) Starts() []int { return sortedKeys(n.starts) }

// Accepting returns the set of accepting states, sorted.
func (n *NFA) Accepting() []int { return sortedKeys(n.accept) }

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// closure expands a state set with ε-transitions (in place) and returns it.
func (n *NFA) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for q := range set {
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range n.eps[q] {
			if !set[next] {
				set[next] = true
				stack = append(stack, next)
			}
		}
	}
	return set
}

// step returns the ε-closure of the set of states reachable from the given
// set on one occurrence of the symbol index s.
func (n *NFA) step(set map[int]bool, s int) map[int]bool {
	next := make(map[int]bool)
	for q := range set {
		for to := range n.delta[q][s] {
			next[to] = true
		}
	}
	return n.closure(next)
}

// Accepts reports whether the NFA accepts the word (subset simulation).
func (n *NFA) Accepts(word []string) bool {
	cur := n.closure(copySet(n.starts))
	for _, sym := range word {
		s, ok := n.alpha.Index(sym)
		if !ok {
			return false
		}
		cur = n.step(cur, s)
		if len(cur) == 0 {
			return false
		}
	}
	for q := range cur {
		if n.accept[q] {
			return true
		}
	}
	return false
}

func copySet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

// setKey builds a canonical string key for a state set.
func setKey(set map[int]bool) string {
	keys := sortedKeys(set)
	buf := make([]byte, 0, 4*len(keys))
	for _, q := range keys {
		buf = append(buf, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
	}
	return string(buf)
}

// Determinize performs the subset construction and returns an equivalent
// complete DFA.  Only reachable subsets become states, so the result has at
// most 2^s states.
func (n *NFA) Determinize() *DFA {
	start := n.closure(copySet(n.starts))
	index := map[string]int{setKey(start): 0}
	sets := []map[int]bool{start}
	var delta [][]int
	var accept []bool

	acceptsSet := func(set map[int]bool) bool {
		for q := range set {
			if n.accept[q] {
				return true
			}
		}
		return false
	}

	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		row := make([]int, n.alpha.Size())
		for s := 0; s < n.alpha.Size(); s++ {
			next := n.step(cur, s)
			key := setKey(next)
			id, ok := index[key]
			if !ok {
				id = len(sets)
				index[key] = id
				sets = append(sets, next)
			}
			row[s] = id
		}
		delta = append(delta, row)
		accept = append(accept, acceptsSet(cur))
	}
	return &DFA{alpha: n.alpha, start: 0, accept: accept, delta: delta}
}

// Reverse returns an NFA accepting the reversal language: transitions are
// flipped and start/accept states are swapped.  ε-transitions are reversed
// as well.
func (n *NFA) Reverse() *NFA {
	r := NewNFA(n.alpha, n.numStates)
	r.AddStart(n.Accepting()...)
	r.AddAccept(n.Starts()...)
	for from, bySym := range n.delta {
		for s, tos := range bySym {
			for to := range tos {
				r.AddTransition(to, n.alpha.Symbol(s), from)
			}
		}
	}
	for from, tos := range n.eps {
		for to := range tos {
			r.AddEpsilon(to, from)
		}
	}
	return r
}

// IsEmpty reports whether the NFA accepts no word (reachability over
// symbol and ε edges).
func (n *NFA) IsEmpty() bool {
	visited := make(map[int]bool)
	var stack []int
	for q := range n.starts {
		visited[q] = true
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.accept[q] {
			return false
		}
		push := func(next int) {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
		for _, tos := range n.delta[q] {
			for to := range tos {
				push(to)
			}
		}
		for to := range n.eps[q] {
			push(to)
		}
	}
	return true
}

// MinimalDFASize returns the number of states of the minimal complete DFA
// for L(n).  It is the measurement primitive of the succinctness
// experiments.
func (n *NFA) MinimalDFASize() int { return n.Determinize().Minimize().NumStates() }
