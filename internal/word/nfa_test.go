package word

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alphabet"
)

// thirdFromEndIsA builds the classic NFA for "the 3rd symbol from the end is
// an a", whose minimal DFA needs 2^3 states.
func nthFromEndIsA(n int) *NFA {
	alpha := alphabet.New("a", "b")
	nfa := NewNFA(alpha, n+1)
	nfa.AddStart(0)
	nfa.AddAccept(n)
	nfa.AddTransition(0, "a", 0)
	nfa.AddTransition(0, "b", 0)
	nfa.AddTransition(0, "a", 1)
	for i := 1; i < n; i++ {
		nfa.AddTransition(i, "a", i+1)
		nfa.AddTransition(i, "b", i+1)
	}
	return nfa
}

func TestNFAAccepts(t *testing.T) {
	nfa := nthFromEndIsA(3)
	cases := map[string]bool{"abb": true, "abbb": false, "aaa": true, "bab": false, "": false, "babb": true}
	for in, want := range cases {
		if got := nfa.Accepts(w(in)); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
	if nfa.Accepts([]string{"z"}) {
		t.Errorf("unknown symbols should be rejected")
	}
}

func TestDeterminizeMatchesNFA(t *testing.T) {
	nfa := nthFromEndIsA(3)
	dfa := nfa.Determinize()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		word := randomWord(rng, 10)
		if nfa.Accepts(word) != dfa.Accepts(word) {
			t.Fatalf("determinization disagrees on %v", word)
		}
	}
}

func TestDeterminizeBlowup(t *testing.T) {
	// The minimal DFA for "n-th symbol from the end is a" has exactly 2^n
	// states: the classic witness of NFA→DFA exponential blowup.
	for n := 1; n <= 6; n++ {
		size := nthFromEndIsA(n).MinimalDFASize()
		want := 1 << n
		if size != want {
			t.Errorf("n=%d: minimal DFA size = %d, want %d", n, size, want)
		}
	}
}

func TestEpsilonTransitions(t *testing.T) {
	alpha := alphabet.New("a", "b")
	// ε-chain: start --ε--> 1 --a--> 2(accept), plus 0 --b--> 2
	nfa := NewNFA(alpha, 3)
	nfa.AddStart(0).AddAccept(2)
	nfa.AddEpsilon(0, 1)
	nfa.AddTransition(1, "a", 2)
	nfa.AddTransition(0, "b", 2)
	cases := map[string]bool{"a": true, "b": true, "": false, "ab": false}
	for in, want := range cases {
		if got := nfa.Accepts(w(in)); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", in, got, want)
		}
	}
	d := nfa.Determinize()
	for in, want := range cases {
		if got := d.Accepts(w(in)); got != want {
			t.Errorf("Determinize().Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestEpsilonClosureCycles(t *testing.T) {
	alpha := alphabet.New("a")
	nfa := NewNFA(alpha, 3)
	nfa.AddStart(0).AddAccept(2)
	nfa.AddEpsilon(0, 1)
	nfa.AddEpsilon(1, 0)
	nfa.AddEpsilon(1, 2)
	if !nfa.Accepts(nil) {
		t.Errorf("ε-cycles must not prevent acceptance of the empty word")
	}
}

func TestNFAIsEmpty(t *testing.T) {
	alpha := alphabet.New("a")
	empty := NewNFA(alpha, 2)
	empty.AddStart(0).AddAccept(1) // no transition connects them
	if !empty.IsEmpty() {
		t.Errorf("disconnected NFA should be empty")
	}
	empty.AddEpsilon(0, 1)
	if empty.IsEmpty() {
		t.Errorf("ε-reachable accepting state means non-empty")
	}
	if nthFromEndIsA(2).IsEmpty() {
		t.Errorf("non-trivial NFA reported empty")
	}
}

func TestNFAReverse(t *testing.T) {
	nfa := nthFromEndIsA(2) // reversal: 2nd symbol (from the start) is an a
	rev := nfa.Reverse()
	cases := map[string]bool{"ba": true, "aa": true, "ab": false, "b": false, "bab": true}
	for in, want := range cases {
		if got := rev.Accepts(w(in)); got != want {
			t.Errorf("Reverse.Accepts(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestAddStateGrows(t *testing.T) {
	nfa := NewNFA(alphabet.New("a"), 0)
	q0 := nfa.AddState()
	q1 := nfa.AddState()
	if q0 != 0 || q1 != 1 || nfa.NumStates() != 2 {
		t.Errorf("AddState numbering broken: %d %d %d", q0, q1, nfa.NumStates())
	}
}

func TestQuickDeterminizePreservesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nfa := randomNFA(rng, 1+rng.Intn(6))
		dfa := nfa.Determinize()
		for i := 0; i < 25; i++ {
			word := randomWord(rng, 8)
			if nfa.Accepts(word) != dfa.Accepts(word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseOfReverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nfa := randomNFA(rng, 1+rng.Intn(5))
		rr := nfa.Reverse().Reverse()
		for i := 0; i < 20; i++ {
			word := randomWord(rng, 8)
			if nfa.Accepts(word) != rr.Accepts(word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// randomNFA builds a random NFA with n states over {a,b}, including some
// ε-transitions.
func randomNFA(rng *rand.Rand, n int) *NFA {
	alpha := alphabet.New("a", "b")
	nfa := NewNFA(alpha, n)
	nfa.AddStart(rng.Intn(n))
	nfa.AddAccept(rng.Intn(n))
	edges := rng.Intn(3 * n)
	for i := 0; i < edges; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			nfa.AddTransition(from, "a", to)
		case 1:
			nfa.AddTransition(from, "b", to)
		default:
			nfa.AddEpsilon(from, to)
		}
	}
	return nfa
}
