package word

import (
	"strings"

	"repro/internal/alphabet"
)

// Regex is a regular expression over an arbitrary (string-symbol) alphabet,
// built with the combinators below and compiled to an NFA by Thompson's
// construction.  The motivating query of the paper's introduction,
// Σ*p1Σ*...pnΣ*, is LinearOrderQuery.
type Regex interface {
	// compile adds the expression's states to the NFA and returns its entry
	// and exit states; the expression's language is the set of words
	// labelling paths from entry to exit.
	compile(n *NFA) (entry, exit int)
}

type emptyWordRegex struct{}
type symbolRegex struct{ sym string }
type anySymbolRegex struct{}
type concatRegex struct{ parts []Regex }
type unionRegex struct{ parts []Regex }
type starRegex struct{ inner Regex }

// Epsilon matches only the empty word.
func Epsilon() Regex { return emptyWordRegex{} }

// Symbol matches the single-symbol word sym.
func Symbol(sym string) Regex { return symbolRegex{sym: sym} }

// AnySymbol matches any single symbol of the alphabet (the paper's Σ).
func AnySymbol() Regex { return anySymbolRegex{} }

// Concat matches the concatenation of its parts; Concat() is Epsilon().
func Concat(parts ...Regex) Regex { return concatRegex{parts: parts} }

// Or matches the union of its parts; Or() matches nothing.
func Or(parts ...Regex) Regex { return unionRegex{parts: parts} }

// Star matches zero or more repetitions of inner (Kleene star).
func Star(inner Regex) Regex { return starRegex{inner: inner} }

// Plus matches one or more repetitions of inner.
func Plus(inner Regex) Regex { return Concat(inner, Star(inner)) }

// Optional matches inner or the empty word.
func Optional(inner Regex) Regex { return Or(inner, Epsilon()) }

// Literal matches exactly the given word.
func Literal(word ...string) Regex {
	parts := make([]Regex, len(word))
	for i, s := range word {
		parts[i] = Symbol(s)
	}
	return Concat(parts...)
}

// SigmaStar matches every word over the alphabet (the paper's Σ*).
func SigmaStar() Regex { return Star(AnySymbol()) }

// LinearOrderQuery is the introduction's query Σ* p1 Σ* ... pn Σ*: the
// patterns appear in the document in that linear order.  Each pattern is a
// single symbol, matching the paper's formulation.
func LinearOrderQuery(patterns ...string) Regex {
	parts := []Regex{SigmaStar()}
	for _, p := range patterns {
		parts = append(parts, Symbol(p), SigmaStar())
	}
	return Concat(parts...)
}

func (emptyWordRegex) compile(n *NFA) (int, int) {
	entry, exit := n.AddState(), n.AddState()
	n.AddEpsilon(entry, exit)
	return entry, exit
}

func (r symbolRegex) compile(n *NFA) (int, int) {
	entry, exit := n.AddState(), n.AddState()
	n.AddTransition(entry, r.sym, exit)
	return entry, exit
}

func (anySymbolRegex) compile(n *NFA) (int, int) {
	entry, exit := n.AddState(), n.AddState()
	for _, sym := range n.alpha.Symbols() {
		n.AddTransition(entry, sym, exit)
	}
	return entry, exit
}

func (r concatRegex) compile(n *NFA) (int, int) {
	if len(r.parts) == 0 {
		return emptyWordRegex{}.compile(n)
	}
	entry, exit := r.parts[0].compile(n)
	for _, part := range r.parts[1:] {
		e, x := part.compile(n)
		n.AddEpsilon(exit, e)
		exit = x
	}
	return entry, exit
}

func (r unionRegex) compile(n *NFA) (int, int) {
	entry, exit := n.AddState(), n.AddState()
	for _, part := range r.parts {
		e, x := part.compile(n)
		n.AddEpsilon(entry, e)
		n.AddEpsilon(x, exit)
	}
	return entry, exit
}

func (r starRegex) compile(n *NFA) (int, int) {
	entry, exit := n.AddState(), n.AddState()
	e, x := r.inner.compile(n)
	n.AddEpsilon(entry, e)
	n.AddEpsilon(x, exit)
	n.AddEpsilon(entry, exit)
	n.AddEpsilon(x, e)
	return entry, exit
}

// CompileRegex compiles the expression to an NFA over the given alphabet
// using Thompson's construction.
func CompileRegex(r Regex, alpha *alphabet.Alphabet) *NFA {
	n := NewNFA(alpha, 0)
	entry, exit := r.compile(n)
	n.AddStart(entry)
	n.AddAccept(exit)
	return n
}

// CompileRegexDFA compiles the expression to a minimal DFA.
func CompileRegexDFA(r Regex, alpha *alphabet.Alphabet) *DFA {
	return CompileRegex(r, alpha).Determinize().Minimize()
}

// ParseRegex parses a simple textual regular expression over single-rune
// symbols: concatenation by juxtaposition, union '|', Kleene star '*',
// plus '+', optional '?', grouping with parentheses, '.' for any symbol and
// '~' for the empty word.  It exists for the CLI tools and examples;
// programmatic construction should use the combinators.
func ParseRegex(s string) (Regex, error) {
	p := &regexParser{input: []rune(strings.TrimSpace(s))}
	r, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.input) {
		return nil, &RegexSyntaxError{Input: s, Offset: p.pos, Msg: "trailing input"}
	}
	return r, nil
}

// MustParseRegex is ParseRegex that panics on error.
func MustParseRegex(s string) Regex {
	r, err := ParseRegex(s)
	if err != nil {
		panic(err)
	}
	return r
}

// RegexSyntaxError reports a syntax error in a textual regular expression.
type RegexSyntaxError struct {
	Input  string
	Offset int
	Msg    string
}

// Error formats the syntax error with its offending input.
func (e *RegexSyntaxError) Error() string {
	return "word: invalid regex " + e.Input + ": " + e.Msg
}

type regexParser struct {
	input []rune
	pos   int
}

func (p *regexParser) peek() (rune, bool) {
	if p.pos < len(p.input) {
		return p.input[p.pos], true
	}
	return 0, false
}

func (p *regexParser) parseUnion() (Regex, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	parts := []Regex{first}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Or(parts...), nil
}

func (p *regexParser) parseConcat() (Regex, error) {
	var parts []Regex
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		atom, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	if len(parts) == 0 {
		return Epsilon(), nil
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Concat(parts...), nil
}

func (p *regexParser) parsePostfix() (Regex, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch c {
		case '*':
			p.pos++
			atom = Star(atom)
		case '+':
			p.pos++
			atom = Plus(atom)
		case '?':
			p.pos++
			atom = Optional(atom)
		default:
			return atom, nil
		}
	}
}

func (p *regexParser) parseAtom() (Regex, error) {
	c, ok := p.peek()
	if !ok {
		return nil, &RegexSyntaxError{Input: string(p.input), Offset: p.pos, Msg: "unexpected end of input"}
	}
	switch c {
	case '(':
		p.pos++
		inner, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return nil, &RegexSyntaxError{Input: string(p.input), Offset: p.pos, Msg: "missing closing parenthesis"}
		}
		p.pos++
		return inner, nil
	case ')', '*', '+', '?', '|':
		return nil, &RegexSyntaxError{Input: string(p.input), Offset: p.pos, Msg: "unexpected operator " + string(c)}
	case '.':
		p.pos++
		return AnySymbol(), nil
	case '~':
		p.pos++
		return Epsilon(), nil
	default:
		p.pos++
		return Symbol(string(c)), nil
	}
}
