package word

import (
	"testing"

	"repro/internal/alphabet"
)

var ab = alphabet.New("a", "b")

func TestRegexBasics(t *testing.T) {
	cases := []struct {
		name  string
		r     Regex
		yes   []string
		no    []string
		alpha *alphabet.Alphabet
	}{
		{"epsilon", Epsilon(), []string{""}, []string{"a"}, ab},
		{"symbol", Symbol("a"), []string{"a"}, []string{"", "b", "aa"}, ab},
		{"any", AnySymbol(), []string{"a", "b"}, []string{"", "ab"}, ab},
		{"concat", Concat(Symbol("a"), Symbol("b")), []string{"ab"}, []string{"a", "b", "ba", "abb"}, ab},
		{"or", Or(Symbol("a"), Symbol("b")), []string{"a", "b"}, []string{"", "ab"}, ab},
		{"star", Star(Symbol("a")), []string{"", "a", "aaaa"}, []string{"b", "ab"}, ab},
		{"plus", Plus(Symbol("a")), []string{"a", "aa"}, []string{"", "b"}, ab},
		{"optional", Optional(Symbol("a")), []string{"", "a"}, []string{"aa", "b"}, ab},
		{"literal", Literal("a", "b", "a"), []string{"aba"}, []string{"ab", "abab"}, ab},
		{"sigma-star", SigmaStar(), []string{"", "a", "bba"}, nil, ab},
		{"empty-or", Or(), nil, []string{"", "a"}, ab},
		{"empty-concat", Concat(), []string{""}, []string{"a"}, ab},
	}
	for _, c := range cases {
		nfa := CompileRegex(c.r, c.alpha)
		dfa := CompileRegexDFA(c.r, c.alpha)
		for _, in := range c.yes {
			if !nfa.Accepts(w(in)) {
				t.Errorf("%s: NFA rejects %q", c.name, in)
			}
			if !dfa.Accepts(w(in)) {
				t.Errorf("%s: DFA rejects %q", c.name, in)
			}
		}
		for _, in := range c.no {
			if nfa.Accepts(w(in)) {
				t.Errorf("%s: NFA accepts %q", c.name, in)
			}
			if dfa.Accepts(w(in)) {
				t.Errorf("%s: DFA accepts %q", c.name, in)
			}
		}
	}
}

func TestLinearOrderQuery(t *testing.T) {
	// Σ* a Σ* b Σ* a Σ*: patterns a, b, a appear in that order.
	r := LinearOrderQuery("a", "b", "a")
	d := CompileRegexDFA(r, ab)
	yes := []string{"aba", "aabbaa", "babab", "abba"}
	no := []string{"", "ab", "ba", "aab", "bba"}
	for _, in := range yes {
		if !d.Accepts(w(in)) {
			t.Errorf("linear-order query should accept %q", in)
		}
	}
	for _, in := range no {
		if d.Accepts(w(in)) {
			t.Errorf("linear-order query should reject %q", in)
		}
	}
}

func TestLinearOrderQueryLinearSize(t *testing.T) {
	// The paper's introduction: the query Σ*p1Σ*...pnΣ* compiles into a
	// deterministic word automaton of linear size (n+1 live states, +1 dead
	// at most).
	for n := 1; n <= 8; n++ {
		patterns := make([]string, n)
		for i := range patterns {
			patterns[i] = "a"
		}
		size := CompileRegexDFA(LinearOrderQuery(patterns...), ab).NumStates()
		if size > n+2 {
			t.Errorf("n=%d: minimal DFA size %d exceeds linear bound %d", n, size, n+2)
		}
	}
}

func TestParseRegex(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"ab", []string{"ab"}, []string{"a", "ba"}},
		{"a|b", []string{"a", "b"}, []string{"ab", ""}},
		{"a*b", []string{"b", "ab", "aaab"}, []string{"a", "ba"}},
		{"(ab)+", []string{"ab", "abab"}, []string{"", "aba"}},
		{"a?b", []string{"b", "ab"}, []string{"aab"}},
		{".*a", []string{"a", "ba", "aba"}, []string{"", "b"}},
		{"~", []string{""}, []string{"a"}},
		{"", []string{""}, []string{"a"}},
	}
	for _, c := range cases {
		r, err := ParseRegex(c.expr)
		if err != nil {
			t.Fatalf("ParseRegex(%q): %v", c.expr, err)
		}
		d := CompileRegexDFA(r, ab)
		for _, in := range c.yes {
			if !d.Accepts(w(in)) {
				t.Errorf("%q should accept %q", c.expr, in)
			}
		}
		for _, in := range c.no {
			if d.Accepts(w(in)) {
				t.Errorf("%q should reject %q", c.expr, in)
			}
		}
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, bad := range []string{"(", ")", "a)", "(a", "*", "|a)", "a(b"} {
		if _, err := ParseRegex(bad); err == nil {
			t.Errorf("ParseRegex(%q) should fail", bad)
		} else if err.Error() == "" {
			t.Errorf("error message should not be empty")
		}
	}
}

func TestMustParseRegexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParseRegex should panic on invalid input")
		}
	}()
	MustParseRegex("(")
}

func TestRegexEquivalences(t *testing.T) {
	// A few classical identities checked as DFA equivalence.
	cases := []struct {
		name string
		lhs  Regex
		rhs  Regex
	}{
		{"star-idempotent", Star(Star(Symbol("a"))), Star(Symbol("a"))},
		{"plus-def", Plus(Symbol("a")), Concat(Symbol("a"), Star(Symbol("a")))},
		{"union-commutes", Or(Symbol("a"), Symbol("b")), Or(Symbol("b"), Symbol("a"))},
		{"distribute", Concat(Symbol("a"), Or(Symbol("a"), Symbol("b"))), Or(Concat(Symbol("a"), Symbol("a")), Concat(Symbol("a"), Symbol("b")))},
		{"sigma-star-absorbs", Concat(SigmaStar(), SigmaStar()), SigmaStar()},
	}
	for _, c := range cases {
		l := CompileRegexDFA(c.lhs, ab)
		r := CompileRegexDFA(c.rhs, ab)
		if !Equivalent(l, r) {
			t.Errorf("%s: expected equivalent languages", c.name)
		}
	}
}
