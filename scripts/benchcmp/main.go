// Command benchcmp is the benchmark-regression gate: it compares two
// directories of BENCH_<ID>.json files (the machine-readable experiment
// tables cmd/nwbench -json writes for experiments.ArtifactIDs(), E21–E28)
// and fails when the fresh run regresses past a threshold against the
// previous one.
//
// Usage:
//
//	benchcmp -old PREV_DIR -new FRESH_DIR [-threshold 2.0]
//
// For every experiment present in both directories it compares
//
//   - wall_ns, the wall clock of regenerating the whole table, and
//   - every timing cell — a column whose header carries a time unit
//     ("ns/ev", "compile µs", ...) — of every row, matched across runs by
//     the row's first (key) column;
//
// and reports any new/old ratio above the threshold (default 2.0×, wide
// enough for CI scheduling noise).  Rows or experiments present on only one
// side are reported as informational skips, never failures, so adding an
// experiment or a row does not break the gate.  Exit status is 1 when any
// regression is found, 0 otherwise.
//
// CI runs it in the bench-json job against the previous run's artifacts
// (falling back to the BENCH_*.json copies committed at the repository
// root); run it locally the same way:
//
//	go run ./cmd/nwbench -quick -json fresh
//	go run ./scripts/benchcmp -old . -new fresh
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// record mirrors the BENCH_<ID>.json schema of cmd/nwbench (the fields the
// comparison needs).
type record struct {
	ID     string     `json:"id"`
	WallNS int64      `json:"wall_ns"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// timingColumn reports whether a header names a wall-clock column — the
// only columns whose regressions the gate judges (counts, speedups, and
// agreement flags are informational).
func timingColumn(header string) bool {
	h := strings.ToLower(header)
	for _, unit := range []string{"ns", "µs", "us/", " us", "ms"} {
		if strings.Contains(h, unit) {
			return true
		}
	}
	return false
}

// loadDir reads every BENCH_*.json in dir, keyed by file base name.
func loadDir(dir string) (map[string]record, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := map[string]record{}
	for _, p := range paths {
		body, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r record
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out[filepath.Base(p)] = r
	}
	return out, nil
}

// rowKey is the row's first column — the sweep variable (queries, shards,
// states) the rows of one experiment are matched on across runs.
func rowKey(row []string) string {
	if len(row) == 0 {
		return ""
	}
	return row[0]
}

func main() {
	oldDir := flag.String("old", "", "directory of previous BENCH_*.json files (the baseline)")
	newDir := flag.String("new", "", "directory of fresh BENCH_*.json files (the run under test)")
	threshold := flag.Float64("threshold", 2.0, "fail when new/old exceeds this ratio on wall_ns or any timing cell")
	flag.Parse()
	if *oldDir == "" || *newDir == "" {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -old PREV_DIR -new FRESH_DIR [-threshold 2.0]")
		os.Exit(2)
	}

	oldRecs, err := loadDir(*oldDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newRecs, err := loadDir(*newDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if len(newRecs) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: no BENCH_*.json files in %s\n", *newDir)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRecs))
	for name := range newRecs {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	compared := 0
	for _, name := range names {
		fresh := newRecs[name]
		prev, ok := oldRecs[name]
		if !ok {
			fmt.Printf("%-18s new experiment, no baseline — skipped\n", fresh.ID)
			continue
		}
		compared++
		if prev.WallNS > 0 {
			ratio := float64(fresh.WallNS) / float64(prev.WallNS)
			fmt.Printf("%-18s wall %8.2fms -> %8.2fms  (%.2fx)\n",
				fresh.ID, float64(prev.WallNS)/1e6, float64(fresh.WallNS)/1e6, ratio)
			if ratio > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: wall_ns %.2fx (%d -> %d ns)", fresh.ID, ratio, prev.WallNS, fresh.WallNS))
			}
		}
		prevRows := map[string][]string{}
		for _, row := range prev.Rows {
			prevRows[rowKey(row)] = row
		}
		for _, row := range fresh.Rows {
			base, ok := prevRows[rowKey(row)]
			if !ok {
				fmt.Printf("%-18s row %q has no baseline — skipped\n", fresh.ID, rowKey(row))
				continue
			}
			for col, header := range fresh.Header {
				if !timingColumn(header) || col >= len(row) || col >= len(base) {
					continue
				}
				newVal, err1 := strconv.ParseFloat(row[col], 64)
				oldVal, err2 := strconv.ParseFloat(base[col], 64)
				if err1 != nil || err2 != nil || oldVal <= 0 {
					continue
				}
				if ratio := newVal / oldVal; ratio > *threshold {
					regressions = append(regressions,
						fmt.Sprintf("%s row %q: %q %.3g -> %.3g (%.2fx)",
							fresh.ID, rowKey(row), header, oldVal, newVal, ratio))
				}
			}
		}
	}

	if len(regressions) > 0 {
		fmt.Printf("\nbenchcmp: %d regressions past %.1fx:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcmp: ok (%d experiments compared, threshold %.1fx)\n", compared, *threshold)
}
