// Project-specific analyzers: hotpath-alloc, unsafe-confinement,
// locked-field, and error-discipline.  Each is syntactic at its core and
// uses type information opportunistically — where the lenient checker left
// an expression unresolved, the analyzer stays silent rather than guessing.
package main

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Annotation grammar (see docs/ANALYZERS.md): directives are whole-line
// comments in a declaration's doc group, spelled without a space after //
// so gofmt preserves them.
const (
	hotpathDirective    = "//nwvet:hotpath"
	lockedDirective     = "//nwvet:locked"
	allowPanicDirective = "//nwvet:allowpanic"
)

// hasDirective scans a doc group's raw comment list for a //nwvet:
// directive.  CommentGroup.Text() strips directive comments, so the raw
// list is the only place they survive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// exprText renders an expression back to source for structural comparison
// (append targets, receiver paths).
func (u *unit) exprText(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, u.fset, e)
	return buf.String()
}

// baseExpr strips slice and paren wrappers: append(x[:0], ...) grows the
// same backing array as x.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// isIdentCall reports whether call invokes the named plain identifier
// (builtins like make, new, append, panic, and conversions like string).
func isIdentCall(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name
}

// analyzeHotpathAlloc checks every function annotated //nwvet:hotpath for
// constructs that allocate per call.  The one sanctioned allocation is the
// amortized growth pattern x = append(x, ...) (including append(x[:0], ...))
// — the slice doubles occasionally but steady-state steps are free.
func analyzeHotpathAlloc(u *unit, report reportFunc) {
	for _, file := range u.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			u.checkHotpathBody(fd, report)
		}
	}
}

func (u *unit) checkHotpathBody(fd *ast.FuncDecl, report reportFunc) {
	name := fd.Name.Name
	violation := func(n ast.Node, format string, args ...any) {
		report("%s: hotpath-alloc: %s "+format, append([]any{u.position(n), name}, args...)...)
	}

	// First pass: collect appends sanctioned by the growth pattern.
	sanctioned := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isIdentCall(call, "append") || len(call.Args) == 0 {
				continue
			}
			if u.exprText(as.Lhs[i]) == u.exprText(baseExpr(call.Args[0])) {
				sanctioned[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			violation(x, "allocates a closure")
			return false
		case *ast.CompositeLit:
			switch t := x.Type.(type) {
			case *ast.MapType:
				violation(x, "allocates a map literal")
			case *ast.ArrayType:
				if t.Len == nil {
					violation(x, "allocates a slice literal")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					violation(x, "heap-allocates an addressed composite literal")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := u.info.Types[idx.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						violation(idx, "assigns into a map")
					}
				}
			}
		case *ast.CallExpr:
			u.checkHotpathCall(x, sanctioned, violation)
		}
		return true
	})
}

// checkHotpathCall flags the allocating call forms inside a hotpath body.
func (u *unit) checkHotpathCall(call *ast.CallExpr, sanctioned map[*ast.CallExpr]bool, violation func(ast.Node, string, ...any)) {
	switch {
	case isIdentCall(call, "make"), isIdentCall(call, "new"):
		violation(call, "calls %s, which allocates", call.Fun.(*ast.Ident).Name)
		return
	case isIdentCall(call, "append"):
		if !sanctioned[call] && len(call.Args) > 0 {
			violation(call, "append result does not feed back into %s (amortized growth pattern required)",
				u.exprText(baseExpr(call.Args[0])))
		}
		return
	case isIdentCall(call, "string"):
		violation(call, "converts to string, which allocates")
		return
	}
	if _, ok := call.Fun.(*ast.ArrayType); ok {
		violation(call, "converts to a slice type, which allocates")
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
			violation(call, "calls fmt.%s, which allocates and boxes its arguments", sel.Sel.Name)
			return
		}
	}
	if arg, param, ok := u.boxedArgument(call); ok {
		violation(call, "boxes %s into interface parameter %d", u.exprText(arg), param)
	}
}

// boxedArgument reports the first argument whose resolved type is concrete
// while the resolved parameter type is an interface — an implicit
// heap-boxing conversion.  Unresolved signatures or argument types produce
// no finding.
func (u *unit) boxedArgument(call *ast.CallExpr) (ast.Expr, int, bool) {
	tv, ok := u.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil, 0, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil, 0, false
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue // f(slice...) spread, or unresolved
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := u.info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		if basic, ok := at.Type.(*types.Basic); ok &&
			(basic.Kind() == types.Invalid || basic.Kind() == types.UntypedNil) {
			continue
		}
		return arg, i, true
	}
	return nil, 0, false
}

// analyzeUnsafeConfinement flags imports of unsafe and uses of reflect's
// SliceHeader/StringHeader outside the allowed directories.  The zero-copy
// reinterpretation in internal/query/format is the single audited home for
// both.
func analyzeUnsafeConfinement(u *unit, allowed bool, report reportFunc) {
	if allowed {
		return
	}
	for _, file := range u.files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "unsafe" {
				report("%s: unsafe-confinement: import of unsafe outside internal/query/format", u.position(imp))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "reflect" &&
				(sel.Sel.Name == "SliceHeader" || sel.Sel.Name == "StringHeader") {
				report("%s: unsafe-confinement: reflect.%s reinterpretation outside internal/query/format",
					u.position(sel), sel.Sel.Name)
			}
			return true
		})
	}
}

// dslImportPath is the query DSL's import path, confined out of the serving
// hot path by analyzeDSLConfinement.
const dslImportPath = "repro/internal/query/dsl"

// analyzeDSLConfinement flags imports of the query DSL compiler from the
// serving hot-path packages (engine, serve, server).  Parsing and compiling
// query text are load-time operations: the CLI and the bundle format hand
// the serving stack compiled automata, so a DSL import there means query
// text is being interpreted per document.  Test files are exempt (loadUnits
// never parses them) — differential tests legitimately compile DSL queries
// next to the stack under test.
func analyzeDSLConfinement(u *unit, confined bool, report reportFunc) {
	if !confined {
		return
	}
	for _, file := range u.files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == dslImportPath {
				report("%s: dsl-confinement: serving hot path imports %s (parse and compile at load time, serve compiled automata)",
					u.position(imp), dslImportPath)
			}
		}
	}
}

// planImportPath is the query planner's import path, confined out of the
// serving stack by analyzePlanConfinement.
const planImportPath = "repro/internal/query/plan"

// analyzePlanConfinement flags construction of product automata from the
// serving-stack packages (engine, serve, server): importing the planner
// (repro/internal/query/plan) or calling query.CompileProduct there.
// Product compilation is a load-time planning decision — it can blow up
// exponentially in the member count (the Section 3.2 product cost), so the
// serving stack consumes planned bundles through the bundle API (Groups,
// ProductRunner) and never builds products itself.  Test files are exempt
// (loadUnits never parses them) — differential tests legitimately plan
// bundles next to the stack under test.
func analyzePlanConfinement(u *unit, confined bool, report reportFunc) {
	if !confined {
		return
	}
	for _, file := range u.files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == planImportPath {
				report("%s: plan-confinement: serving stack imports %s (plan at load time, serve planned bundles through the bundle API)",
					u.position(imp), planImportPath)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "query" && sel.Sel.Name == "CompileProduct" {
				report("%s: plan-confinement: serving stack calls query.CompileProduct (product automata are built by the planner at load time)",
					u.position(sel))
			}
			return true
		})
	}
}

// cryptoPackages are the hash and signature primitives of the bundle
// integrity layer, confined by analyzeCryptoConfinement.
var cryptoPackages = []string{"crypto/ed25519", "crypto/sha256"}

// analyzeCryptoConfinement flags imports of the content-hash and signature
// primitives outside their audited homes: internal/query/format owns
// hashing and signing (the NWQ1 content hash, the NWS1 envelope), and
// internal/bundlecache verifies fetched entries.  Every other package
// consumes hashes as opaque [format.HashSize]byte values through
// format.Checksum / format.ContentHash / format.VerifyHash — direct crypto
// use anywhere else scatters key handling and verification policy beyond
// what a review of the two homes can audit.
func analyzeCryptoConfinement(u *unit, allowed bool, report reportFunc) {
	if allowed {
		return
	}
	for _, file := range u.files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, banned := range cryptoPackages {
				if path == banned {
					report("%s: crypto-confinement: import of %s outside internal/query/format and internal/bundlecache (consume hashes through the format package)",
						u.position(imp), path)
				}
			}
		}
	}
}

// guardComment extracts the mutex name from a "guarded by <mu>" field
// comment.
var guardComment = regexp.MustCompile(`guarded by (\w+)`)

// analyzeLockedFields enforces "guarded by mu" field comments: a method
// touching such a field must lock that mutex on its own receiver somewhere
// in its body, or carry a //nwvet:locked annotation asserting external
// synchronization (construction, or the owning shard goroutine).
func analyzeLockedFields(u *unit, report reportFunc) {
	// struct type name -> guarded field name -> mutex field name
	guards := map[string]map[string]string{}
	for _, file := range u.files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mu := guardMutexName(f.Comment)
				if mu == "" {
					mu = guardMutexName(f.Doc)
				}
				if mu == "" {
					continue
				}
				if guards[ts.Name.Name] == nil {
					guards[ts.Name.Name] = map[string]string{}
				}
				for _, nm := range f.Names {
					guards[ts.Name.Name][nm.Name] = mu
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	for _, file := range u.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			fields := guards[receiverTypeName(fd.Recv)]
			if fields == nil || hasDirective(fd.Doc, lockedDirective) {
				continue
			}
			recvName := ""
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if recvName == "" || recvName == "_" {
				continue // cannot touch fields without a named receiver
			}
			locked := lockedMutexes(fd.Body, recvName)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok || base.Name != recvName {
					return true
				}
				mu, guarded := fields[sel.Sel.Name]
				if guarded && !locked[mu] {
					report("%s: locked-field: %s touches %s.%s (guarded by %s) without holding the mutex",
						u.position(sel), fd.Name.Name, recvName, sel.Sel.Name, mu)
				}
				return true
			})
		}
	}
}

// guardMutexName pulls the mutex name out of a field's comment group.
func guardMutexName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardComment.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// receiverTypeName unwraps a method receiver to its base type identifier.
func receiverTypeName(recv *ast.FieldList) string {
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// lockedMutexes collects the mutex field names the body locks on the named
// receiver: recv.<mu>.Lock() or recv.<mu>.RLock() anywhere in the function.
func lockedMutexes(body *ast.BlockStmt, recvName string) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base, ok := muSel.X.(*ast.Ident); ok && base.Name == recvName {
			locked[muSel.Sel.Name] = true
		}
		return true
	})
	return locked
}

// analyzeErrorDiscipline flags panic calls in the decode/validation
// packages: corrupted bytes must surface as returned errors, never as
// crashes.  Functions annotated //nwvet:allowpanic (Must* helpers whose
// contract is the panic) are exempt.
func analyzeErrorDiscipline(u *unit, report reportFunc) {
	for _, file := range u.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective(fd.Doc, allowPanicDirective) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok && isIdentCall(call, "panic") {
					report("%s: error-discipline: %s panics — decode/validation paths must return errors (//nwvet:allowpanic to acknowledge)",
						u.position(call), fd.Name.Name)
				}
				return true
			})
		}
	}
}
