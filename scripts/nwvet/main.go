// Command nwvet is the repository's static-analysis suite: a multi-analyzer
// driver built on go/parser, go/ast, and go/types alone (no module
// dependencies), run in CI as `go run ./scripts/nwvet ./...`.
//
// Project-specific analyzers (documented in docs/ANALYZERS.md):
//
//   - hotpath-alloc: functions annotated //nwvet:hotpath — the runner step
//     loops, the bitset kernels, the engine feed path, the tokenizer loop —
//     may not contain allocating constructs: make/new, map or slice
//     composite literals, closures, fmt calls, string or []T conversions,
//     appends that do not feed back into their source slice, assignments
//     into maps, or calls that box a concrete argument into an interface
//     parameter.
//   - unsafe-confinement: the unsafe package and reflect's SliceHeader /
//     StringHeader reinterpretation live only in internal/query/format,
//     where the zero-copy bundle loader is audited; everywhere else they
//     are violations.
//   - crypto-confinement: the content-hash and signature primitives
//     (crypto/sha256, crypto/ed25519) are imported only by
//     internal/query/format (which owns hashing and signing) and
//     internal/bundlecache (which verifies fetched entries); every other
//     package consumes hashes through the format package's helpers.
//   - dsl-confinement: the serving hot-path packages (internal/engine,
//     internal/serve, internal/server) may not import the query DSL
//     compiler (repro/internal/query/dsl) — query text is parsed and
//     compiled at load time, the stack serves compiled automata.
//   - plan-confinement: the same serving packages may not construct
//     product automata — neither importing the query planner
//     (repro/internal/query/plan) nor calling query.CompileProduct.
//     Product compilation is a load-time planning decision with a
//     potentially exponential state cost; the serving stack consumes
//     planned bundles through the bundle API.
//   - locked-field: struct fields documented "guarded by mu" may only be
//     touched by methods that lock that mutex (or are annotated
//     //nwvet:locked as externally synchronized, e.g. the owning shard
//     goroutine).
//   - error-discipline: decode and validation paths in internal/query
//     return errors; panic is a violation unless the function is annotated
//     //nwvet:allowpanic.
//
// The driver also carries the repository's documentation invariants, folded
// in from the retired repolint command: package doc comments, exported-
// identifier doc comments, relative Markdown link targets, the
// docs/EXPERIMENTS.md index table against experiments.Index(), and the
// committed BENCH_E*.json baselines against experiments.ArtifactIDs().
//
// It prints one line per violation and exits 1 if there are any, 2 on
// infrastructure errors, and prints "nwvet: ok" otherwise.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// reportFunc records one formatted violation line.
type reportFunc func(format string, args ...any)

// unit is one package directory's worth of parsed, leniently type-checked
// non-test Go files.
type unit struct {
	dir   string // slash-separated, relative to the walk root
	fset  *token.FileSet
	paths []string // parallel to files
	files []*ast.File
	info  *types.Info
}

// Analyzer scoping: unsafe is confined to these directories, and the
// error-discipline analyzer runs over these.  (hotpath-alloc and
// locked-field need no directory list — they trigger on //nwvet:hotpath
// annotations and "guarded by" field comments wherever they appear.)
var (
	unsafeAllowedDirs   = []string{"internal/query/format"}
	cryptoAllowedDirs   = []string{"internal/query/format", "internal/bundlecache"}
	errorDisciplineDirs = []string{"internal/query", "internal/query/format"}
	dslConfinedDirs     = []string{"internal/engine", "internal/serve", "internal/server"}
	planConfinedDirs    = []string{"internal/engine", "internal/serve", "internal/server"}
)

func main() {
	root := "."
	for _, a := range os.Args[1:] {
		if a == "./..." || a == "..." {
			continue // package-pattern spelling of "the whole repository"
		}
		root = strings.TrimSuffix(a, "/...")
	}
	problems, err := runNwvet(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwvet:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("nwvet: %d problems\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("nwvet: ok")
}

// runNwvet loads every package directory under root, runs the four code
// analyzers and the folded documentation checks, and returns the collected
// violation lines.  A non-nil error is infrastructure failure (unparsable
// tree, unreadable files), not a finding.
func runNwvet(root string) ([]string, error) {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	units, err := loadUnits(root)
	if err != nil {
		return nil, err
	}
	for _, u := range units {
		analyzeHotpathAlloc(u, report)
		analyzeUnsafeConfinement(u, dirIn(u.dir, unsafeAllowedDirs), report)
		analyzeCryptoConfinement(u, dirIn(u.dir, cryptoAllowedDirs), report)
		analyzeDSLConfinement(u, dirIn(u.dir, dslConfinedDirs), report)
		analyzePlanConfinement(u, dirIn(u.dir, planConfinedDirs), report)
		analyzeLockedFields(u, report)
		if dirIn(u.dir, errorDisciplineDirs) {
			analyzeErrorDiscipline(u, report)
		}
		checkDocComments(u, report)
	}
	if err := lintMarkdownLinks(root, report); err != nil {
		return nil, err
	}
	if err := lintExperimentIndex(root, report); err != nil {
		return nil, err
	}
	if err := lintBenchArtifacts(root, report); err != nil {
		return nil, err
	}
	return problems, nil
}

// dirIn reports whether dir is one of the slash-separated targets, matched
// as a path suffix so the walk root's spelling does not matter.
func dirIn(dir string, targets []string) bool {
	dir = filepath.ToSlash(dir)
	for _, t := range targets {
		if dir == t || strings.HasSuffix(dir, "/"+t) {
			return true
		}
	}
	return false
}

// loadUnits walks root, parses every non-test Go file outside .git, hidden,
// and testdata directories, groups them per directory, and type-checks each
// group leniently (missing cross-package information is tolerated; the
// analyzers degrade to their syntactic cores where types are unresolved).
func loadUnits(root string) ([]*unit, error) {
	fset := token.NewFileSet()
	byDir := map[string]*unit{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == ".git" || name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dir := filepath.Dir(path)
		u := byDir[dir]
		if u == nil {
			u = &unit{dir: dir, fset: fset}
			byDir[dir] = u
		}
		u.paths = append(u.paths, path)
		u.files = append(u.files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	units := make([]*unit, 0, len(byDir))
	for _, u := range byDir {
		u.typecheck()
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].dir < units[j].dir })
	return units, nil
}

// typecheck runs go/types over the unit with every error swallowed and all
// imports stubbed out: same-package types resolve, cross-package ones come
// out invalid, and the analyzers treat "unresolved" as "no finding".
func (u *unit) typecheck() {
	u.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Error:       func(error) {}, // lenient: partial information is fine
		Importer:    &stubImporter{cache: map[string]*types.Package{}},
		FakeImportC: true,
	}
	// The returned error repeats what Error already swallowed.
	conf.Check(u.dir, u.fset, u.files, u.info) //nolint:errcheck
}

// stubImporter satisfies every import with an empty, incomplete package:
// references into it fail to resolve, which the lenient config tolerates.
type stubImporter struct {
	cache map[string]*types.Package
}

// Import returns (and memoizes) the empty stand-in package for path.
func (im *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.cache[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	im.cache[path] = p
	return p, nil
}

// position renders a file:line anchor for a node in the unit.
func (u *unit) position(n ast.Node) string {
	p := u.fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
