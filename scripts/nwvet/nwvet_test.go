package main

import (
	"fmt"
	"strings"
	"testing"
)

// collect loads one fixture directory and runs an analyzer over every unit
// in it, returning the violation lines.
func collect(t *testing.T, dir string, run func(*unit, reportFunc)) []string {
	t.Helper()
	units, err := loadUnits(dir)
	if err != nil {
		t.Fatalf("loadUnits(%s): %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("loadUnits(%s): no Go files found", dir)
	}
	var got []string
	report := func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	}
	for _, u := range units {
		run(u, report)
	}
	return got
}

// wantFindings asserts the exact violation count and that every expected
// fragment appears in some finding.
func wantFindings(t *testing.T, got []string, fragments []string) {
	t.Helper()
	if len(got) != len(fragments) {
		t.Errorf("got %d findings, want %d:\n%s", len(got), len(fragments), strings.Join(got, "\n"))
	}
	for _, frag := range fragments {
		found := false
		for _, g := range got {
			if strings.Contains(g, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding mentions %q in:\n%s", frag, strings.Join(got, "\n"))
		}
	}
}

func TestHotpathAllocSeededViolations(t *testing.T) {
	got := collect(t, "testdata/hotpath_bad", analyzeHotpathAlloc)
	wantFindings(t, got, []string{
		"calls make, which allocates",
		"allocates a map literal",
		"allocates a slice literal",
		"heap-allocates an addressed composite literal",
		"allocates a closure",
		"calls fmt.Println",
		"converts to string",
		"converts to a slice type",
		"append result does not feed back into w.buf",
		"assigns into a map",
		"boxes n into interface parameter 0",
	})
	for _, g := range got {
		if !strings.Contains(g, "hotpath-alloc: step ") {
			t.Errorf("finding not attributed to the annotated function: %s", g)
		}
	}
}

func TestHotpathAllocCleanFixture(t *testing.T) {
	if got := collect(t, "testdata/hotpath_clean", analyzeHotpathAlloc); len(got) != 0 {
		t.Errorf("clean hotpath fixture flagged:\n%s", strings.Join(got, "\n"))
	}
}

func TestUnsafeConfinementSeededViolations(t *testing.T) {
	got := collect(t, "testdata/unsafe_bad", func(u *unit, r reportFunc) {
		analyzeUnsafeConfinement(u, false, r)
	})
	wantFindings(t, got, []string{
		"import of unsafe",
		"reflect.SliceHeader",
	})

	// The same file inside the allowed directory is fine.
	allowed := collect(t, "testdata/unsafe_bad", func(u *unit, r reportFunc) {
		analyzeUnsafeConfinement(u, true, r)
	})
	if len(allowed) != 0 {
		t.Errorf("allowed directory still flagged:\n%s", strings.Join(allowed, "\n"))
	}
}

func TestCryptoConfinementSeededViolations(t *testing.T) {
	got := collect(t, "testdata/crypto_bad", func(u *unit, r reportFunc) {
		analyzeCryptoConfinement(u, false, r)
	})
	wantFindings(t, got, []string{
		"crypto-confinement: import of crypto/ed25519",
		"crypto-confinement: import of crypto/sha256",
	})

	// The same file inside an allowed directory is fine.
	allowed := collect(t, "testdata/crypto_bad", func(u *unit, r reportFunc) {
		analyzeCryptoConfinement(u, true, r)
	})
	if len(allowed) != 0 {
		t.Errorf("allowed directory still flagged:\n%s", strings.Join(allowed, "\n"))
	}
}

func TestDSLConfinementSeededViolation(t *testing.T) {
	got := collect(t, "testdata/dsl_bad", func(u *unit, r reportFunc) {
		analyzeDSLConfinement(u, true, r)
	})
	wantFindings(t, got, []string{
		"dsl-confinement: serving hot path imports repro/internal/query/dsl",
	})

	// The same file outside the confined directories is fine.
	outside := collect(t, "testdata/dsl_bad", func(u *unit, r reportFunc) {
		analyzeDSLConfinement(u, false, r)
	})
	if len(outside) != 0 {
		t.Errorf("unconfined directory still flagged:\n%s", strings.Join(outside, "\n"))
	}
}

func TestPlanConfinementSeededViolation(t *testing.T) {
	got := collect(t, "testdata/plan_bad", func(u *unit, r reportFunc) {
		analyzePlanConfinement(u, true, r)
	})
	wantFindings(t, got, []string{
		"plan-confinement: serving stack imports repro/internal/query/plan",
		"plan-confinement: serving stack calls query.CompileProduct",
	})

	// The same file outside the confined directories is fine.
	outside := collect(t, "testdata/plan_bad", func(u *unit, r reportFunc) {
		analyzePlanConfinement(u, false, r)
	})
	if len(outside) != 0 {
		t.Errorf("unconfined directory still flagged:\n%s", strings.Join(outside, "\n"))
	}
}

func TestLockedFieldSeededViolation(t *testing.T) {
	got := collect(t, "testdata/locked_bad", analyzeLockedFields)
	wantFindings(t, got, []string{
		"bad touches p.closed (guarded by mu) without holding the mutex",
	})
}

func TestErrorDisciplineSeededViolation(t *testing.T) {
	got := collect(t, "testdata/errpanic_bad", analyzeErrorDiscipline)
	wantFindings(t, got, []string{
		"decode panics",
	})
}

// TestCleanFixture runs every analyzer plus the doc checks over the
// known-clean fixture; nothing may fire.
func TestCleanFixture(t *testing.T) {
	got := collect(t, "testdata/clean", func(u *unit, r reportFunc) {
		analyzeHotpathAlloc(u, r)
		analyzeUnsafeConfinement(u, false, r)
		analyzeDSLConfinement(u, true, r)
		analyzePlanConfinement(u, true, r)
		analyzeLockedFields(u, r)
		analyzeErrorDiscipline(u, r)
		checkDocComments(u, r)
	})
	if len(got) != 0 {
		t.Errorf("clean fixture flagged:\n%s", strings.Join(got, "\n"))
	}
}

// TestRepoVetsClean is the self-application gate: the whole repository —
// annotated hot paths, unsafe confinement, guarded fields, decode paths,
// documentation invariants — must pass its own analyzer suite.
func TestRepoVetsClean(t *testing.T) {
	problems, err := runNwvet("../..")
	if err != nil {
		t.Fatalf("runNwvet: %v", err)
	}
	for _, p := range problems {
		t.Errorf("nwvet: %s", p)
	}
}
