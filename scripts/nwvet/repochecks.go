// Documentation and repository-hygiene checks, folded in from the retired
// scripts/repolint command so CI has a single static-analysis entry point:
// package and exported-identifier doc comments, relative Markdown link
// targets, the experiment index, and the committed benchmark baselines.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/experiments"
)

// checkDocComments enforces the documentation invariants on one package
// directory: some file documents the package clause, and every exported
// top-level identifier carries a doc comment.
func checkDocComments(u *unit, report reportFunc) {
	documented := false
	for _, file := range u.files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			documented = true
		}
	}
	if !documented && len(u.paths) > 0 {
		report("%s: package in %s has no package doc comment", u.paths[0], u.dir)
	}
	for i, file := range u.files {
		lintDecls(u.fset, u.paths[i], file, report)
	}
}

// lintDecls reports exported top-level identifiers without doc comments.
func lintDecls(fset *token.FileSet, path string, file *ast.File, report reportFunc) {
	exportedTypes := map[string]bool{}
	for _, decl := range file.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", path, p.Line)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !receiverIsExported(d.Recv, exportedTypes) {
				continue
			}
			if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
				report("%s: exported %s %s has no doc comment", pos(d), funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
						report("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || (s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
						(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "") {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report("%s: exported %s %s has no doc comment", pos(s), strings.ToLower(d.Tok.String()), name.Name)
						}
					}
				}
			}
		}
	}
}

// funcKind distinguishes methods from functions in reports.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverIsExported reports whether a method's receiver type is exported in
// the same file's terms (methods on unexported types are not part of the
// package API).
func receiverIsExported(recv *ast.FieldList, exported map[string]bool) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return exported[x.Name] || x.IsExported()
		default:
			return false
		}
	}
}

// experimentRow matches the ID cell of one docs/EXPERIMENTS.md index table
// row ("| E21 | ... |").
var experimentRow = regexp.MustCompile(`(?m)^\|\s*(E\d+)\s*\|`)

// lintExperimentIndex cross-checks experiments.Index() against the index
// table of docs/EXPERIMENTS.md: every ID the code knows must be documented,
// and every documented ID must exist in the code.
func lintExperimentIndex(root string, report reportFunc) error {
	path := filepath.Join(root, "docs", "EXPERIMENTS.md")
	body, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("experiment index: %w", err)
	}
	documented := map[string]bool{}
	for _, m := range experimentRow.FindAllStringSubmatch(string(body), -1) {
		documented[m[1]] = true
	}
	coded := map[string]bool{}
	for _, info := range experiments.Index() {
		coded[info.ID] = true
		if !documented[info.ID] {
			report("%s: experiment %s is in experiments.Index() but missing from the index table", path, info.ID)
		}
	}
	for id := range documented {
		if !coded[id] {
			report("%s: experiment %s is documented but missing from experiments.Index()", path, id)
		}
	}
	return nil
}

// lintBenchArtifacts cross-checks the committed BENCH_E*.json benchmark
// baselines at the repository root against experiments.ArtifactIDs(): a
// file whose experiment no longer records an artifact is stale, and an
// artifact-recording experiment without a committed baseline leaves the
// bench-regression gate's fallback without a point of comparison.
func lintBenchArtifacts(root string, report reportFunc) error {
	files, err := filepath.Glob(filepath.Join(root, "BENCH_E*.json"))
	if err != nil {
		return fmt.Errorf("bench artifacts: %w", err)
	}
	coded := map[string]bool{}
	for _, id := range experiments.ArtifactIDs() {
		coded[id] = true
	}
	committed := map[string]bool{}
	for _, f := range files {
		id := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(f), "BENCH_"), ".json")
		committed[id] = true
		if !coded[id] {
			report("%s: stale benchmark artifact — %s is not in experiments.ArtifactIDs()", f, id)
		}
	}
	for _, id := range experiments.ArtifactIDs() {
		if !committed[id] {
			report("%s: experiment %s records a benchmark artifact but BENCH_%s.json is not committed at the repository root",
				root, id, id)
		}
	}
	return nil
}

// mdLink matches the target of one inline Markdown link.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// stripCode blanks out fenced code blocks and inline code spans so that
// bracket sequences inside code are not mistaken for Markdown links.
func stripCode(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.SplitAfter(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			out.WriteString("\n")
			continue
		}
		if inFence {
			out.WriteString("\n")
			continue
		}
		// Drop inline `code` spans within the line.
		for {
			open := strings.IndexByte(line, '`')
			if open < 0 {
				break
			}
			close := strings.IndexByte(line[open+1:], '`')
			if close < 0 {
				break
			}
			line = line[:open] + line[open+1+close+1:]
		}
		out.WriteString(line)
	}
	return out.String()
}

// lintMarkdownLinks checks that every relative link target in the
// repository's Markdown files exists.
func lintMarkdownLinks(root string, report reportFunc) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(path), ".md") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCode(string(body)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				report("%s: broken link %q", path, m[1])
			}
		}
		return nil
	})
}
