// Package fixture is the known-clean fixture: every nwvet analyzer runs
// over it and must report nothing.
package fixture

import "sync"

type counter struct {
	mu  sync.Mutex
	n   int // guarded by mu
	buf []int
}

// bump increments the guarded counter under its lock.
func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// hot is an annotated allocation-free accumulation loop.
//
//nwvet:hotpath
func (c *counter) hot(vs []int) int {
	sum := 0
	for _, v := range vs {
		sum += v
	}
	c.buf = append(c.buf, sum)
	return sum
}
