// Package fixture seeds crypto-confinement violations: a package outside
// the audited homes (internal/query/format, internal/bundlecache)
// importing the hash and signature primitives directly.
package fixture

import (
	"crypto/ed25519"
	"crypto/sha256"
)

// Digest pretends to hash and sign bytes outside the audited crypto homes.
func Digest(priv ed25519.PrivateKey, data []byte) []byte {
	sum := sha256.Sum256(data)
	return ed25519.Sign(priv, sum[:])
}
