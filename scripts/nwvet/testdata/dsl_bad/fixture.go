// Package fixture seeds a dsl-confinement violation: a serving hot-path
// package importing the query DSL compiler.
package fixture

import (
	"repro/internal/query/dsl"
)

// Serve pretends to interpret query text per document.
func Serve(text string) error {
	_, err := dsl.Parse(text)
	return err
}
