// Package fixture seeds an error-discipline violation: a decode path that
// panics on bad input instead of returning an error.
package fixture

import "errors"

// decode must return an error on bad input, not panic.
func decode(b []byte) error {
	if len(b) == 0 {
		panic("empty input")
	}
	return errors.New("unsupported")
}

// mustDecode's contract is the panic; the annotation acknowledges it.
//
//nwvet:allowpanic
func mustDecode(b []byte) {
	if err := decode(b); err != nil {
		panic(err)
	}
}
