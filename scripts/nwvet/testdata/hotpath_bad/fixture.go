// Package fixture seeds one of every hotpath-alloc violation class for the
// analyzer's golden tests.
package fixture

import "fmt"

type widget struct {
	buf   []int
	table map[string]int
}

func consumeAny(v interface{}) interface{} { return v }

// step is annotated hot but allocates in every way the analyzer forbids.
//
//nwvet:hotpath
func (w *widget) step(n int) int {
	s := make([]int, n)           // make
	m := map[string]int{"n": n}   // map literal
	lit := []int{n, n}            // slice literal
	ptr := &widget{}              // addressed composite literal
	fn := func() int { return n } // closure
	fmt.Println(n)                // fmt call
	name := string(rune(n))       // string conversion
	raw := []byte(name)           // slice conversion
	grown := append(w.buf, n)     // append that does not feed back
	w.table[name] = n             // map index assignment
	consumeAny(n)                 // interface boxing
	_, _, _, _, _ = s, m, lit, ptr, raw
	_ = grown
	return fn()
}
