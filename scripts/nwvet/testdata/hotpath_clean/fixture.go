// Package fixture is the hotpath-alloc known-clean fixture: the annotated
// function uses only sanctioned patterns.
package fixture

type pair struct{ a, b int }

type ring struct {
	buf []int
}

func (r *ring) helper(n int) int { return n }

// push stays allocation-free: amortized append growth (including the
// reslice-to-zero spelling), value struct literals, and calls to
// unannotated helpers are all allowed.
//
//nwvet:hotpath
func (r *ring) push(n int) int {
	r.buf = append(r.buf, n)
	r.buf = append(r.buf[:0], n)
	v := pair{a: n, b: n}
	return r.helper(v.a + v.b)
}
