// Package fixture seeds a locked-field violation: pool.closed is guarded
// by mu, and one method touches it without the lock.
package fixture

import "sync"

type pool struct {
	mu     sync.RWMutex
	closed bool // guarded by mu
}

// bad reads the guarded field without the lock.
func (p *pool) bad() bool {
	return p.closed
}

// good holds the read lock.
func (p *pool) good() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

// shutdown holds the write lock.
func (p *pool) shutdown() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

// owner runs on the goroutine that owns the pool before it is published.
//
//nwvet:locked mu
func (p *pool) owner() {
	p.closed = false
}
