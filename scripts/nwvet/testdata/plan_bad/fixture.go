// Package fixture seeds plan-confinement violations: a serving-stack
// package importing the query planner and building a product automaton
// itself.
package fixture

import (
	"repro/internal/query"
	"repro/internal/query/plan"
)

// Register pretends to plan a bundle inside the serving stack.
func Register(b *query.Bundle) (*query.Bundle, error) {
	planned, _, err := plan.Bundle(b, plan.Options{})
	if err != nil {
		return nil, err
	}
	members := []query.Query{planned.Query(0), planned.Query(1)}
	if _, err := query.CompileProduct(members, 0); err != nil {
		return nil, err
	}
	return planned, nil
}
