// Package fixture seeds unsafe-confinement violations: an unsafe import
// and a reflect header reinterpretation outside internal/query/format.
package fixture

import (
	"reflect"
	"unsafe"
)

// reinterpret uses both forbidden escape hatches.
func reinterpret(p *int) unsafe.Pointer {
	var h reflect.SliceHeader
	_ = h
	return unsafe.Pointer(p)
}
